#include "xform/transform.hpp"

#include "cfg/cfg.hpp"
#include "crypto/cbc_mac.hpp"
#include "support/error.hpp"
#include "xform/normalize.hpp"

namespace sofia::xform {

using assembler::LoadImage;
using assembler::Program;

namespace {

/// MAC words at the head of a block: [M1, M2] for an execution block,
/// [M1, M1, M2] for a multiplexor block (two entry copies of M1, §II-D).
std::vector<std::uint32_t> mac_head(const Block& block, std::uint64_t tag) {
  const std::uint32_t m1 = crypto::mac_word1(tag);
  const std::uint32_t m2 = crypto::mac_word2(tag);
  if (block.kind == BlockKind::kExec) return {m1, m2};
  return {m1, m1, m2};
}

std::uint64_t block_mac(const Block& block, const crypto::BlockCipher64& exec_mac,
                        const crypto::BlockCipher64& mux_mac) {
  std::vector<std::uint32_t> insts;
  insts.reserve(block.insts.size());
  for (const PlacedInst& pi : block.insts) insts.push_back(isa::encode(pi.inst));
  const auto& cipher =
      block.kind == BlockKind::kExec ? exec_mac : mux_mac;
  return crypto::cbc_mac64(cipher, insts);
}

/// prevPC (word address) used to decrypt block word index `j`.
std::uint32_t prev_word_for(const Block& block, std::uint32_t j) {
  if (j == 0) return block.pred1_word;
  if (block.kind == BlockKind::kMux && j == 1) return block.pred2_word;
  return block.base_word + j - 1;
}

void encrypt_block(const Block& block, std::vector<std::uint32_t>& words,
                   const crypto::BlockCipher64& enc, std::uint16_t omega,
                   crypto::Granularity gran) {
  const auto n = static_cast<std::uint32_t>(words.size());
  if (gran == crypto::Granularity::kPerWord) {
    for (std::uint32_t j = 0; j < n; ++j) {
      words[j] ^= crypto::keystream32(enc, omega, prev_word_for(block, j),
                                      block.base_word + j);
    }
    return;
  }
  // Per-pair: multiplexor entry words are single-word granules (their
  // predecessors differ); everything else pairs up on even offsets.
  std::uint32_t j = 0;
  if (block.kind == BlockKind::kMux) {
    for (; j < 2; ++j)
      words[j] ^= crypto::keystream32(enc, omega, prev_word_for(block, j),
                                      block.base_word + j);
  }
  for (; j < n; j += 2) {
    const std::uint64_t ks = crypto::keystream64(
        enc, omega, prev_word_for(block, j), block.base_word + j);
    words[j] ^= static_cast<std::uint32_t>(ks);
    words[j + 1] ^= static_cast<std::uint32_t>(ks >> 32);
  }
}

}  // namespace

std::vector<std::uint32_t> block_plaintext(const BlockLayout& layout,
                                           const Block& block,
                                           const crypto::KeySet& keys) {
  const auto exec_mac = keys.exec_mac_cipher();
  const auto mux_mac = keys.mux_mac_cipher();
  std::vector<std::uint32_t> words =
      mac_head(block, block_mac(block, *exec_mac, *mux_mac));
  for (const PlacedInst& pi : block.insts) words.push_back(isa::encode(pi.inst));
  if (words.size() != layout.policy().words_per_block)
    throw TransformError("transform: block word count mismatch");
  return words;
}

TransformResult transform(const Program& prog, const crypto::KeySet& keys,
                          const Options& opts) {
  TransformResult result;
  result.normalized = merge_returns(devirtualize(prog));
  const cfg::Cfg cfg = cfg::Cfg::build(result.normalized);
  result.layout = BlockLayout::pack(result.normalized, cfg, opts.policy,
                                    opts.mem, opts.elide_unreachable);

  result.stats.layout = result.layout.stats();
  result.stats.text_bytes_in =
      static_cast<std::uint32_t>(prog.text.size()) * 4;
  result.stats.text_bytes_out = result.layout.total_words() * 4;

  const auto enc = keys.encryption_cipher();

  LoadImage& img = result.image;
  img.sofia = true;
  img.per_pair = (opts.granularity == crypto::Granularity::kPerPair);
  img.omega = keys.omega;
  img.text_base = opts.mem.text_base;
  img.data_base = opts.mem.data_base;
  img.stack_top = opts.mem.stack_top;
  img.entry_prev = assembler::kResetPrevWord;
  img.entry = result.layout.entry_target_addr(result.layout.reset_entry());

  img.text.reserve(result.layout.total_words());
  for (const Block& block : result.layout.blocks()) {
    std::vector<std::uint32_t> words =
        block_plaintext(result.layout, block, keys);
    encrypt_block(block, words, *enc, keys.omega, opts.granularity);
    img.text.insert(img.text.end(), words.begin(), words.end());
  }

  // Data section: resolve .word label slots against the new layout.
  img.data = result.normalized.data;
  for (const auto& reloc : result.normalized.data_relocs) {
    std::uint32_t addr = 0;
    if (auto it = result.normalized.text_labels.find(reloc.symbol);
        it != result.normalized.text_labels.end())
      addr = result.layout.placed_addr(it->second);
    else
      addr = opts.mem.data_base + result.normalized.data_labels.at(reloc.symbol);
    for (int b = 0; b < 4; ++b)
      img.data[reloc.offset + static_cast<std::uint32_t>(b)] =
          static_cast<std::uint8_t>(addr >> (8 * b));
  }
  return result;
}

}  // namespace sofia::xform
