#include "campaign/mutation.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/json.hpp"

namespace sofia::campaign {

const std::vector<MutatorInfo>& mutator_catalog() {
  static const std::vector<MutatorInfo> catalog = {
      {MutationKind::kBitFlip, "bit-flip",
       "flip one bit of one ciphertext word"},
      {MutationKind::kWordPatch, "word-patch",
       "overwrite one ciphertext word with a chosen value"},
      {MutationKind::kWordRelocate, "word-relocate",
       "copy one ciphertext word over another (counter misuse)"},
      {MutationKind::kBlockSplice, "block-splice",
       "copy one whole encrypted block over another (code reuse)"},
      {MutationKind::kHeaderForge, "header-forge",
       "XOR a stored MAC/header word with a nonzero mask"},
      {MutationKind::kCrossVersionSplice, "cross-version-splice",
       "graft the same block from a build under another version nonce"},
      {MutationKind::kFetchFault, "fetch-fault",
       "transient fault: flip one bit of the N-th fetched word"},
      {MutationKind::kRetargetIndirect, "retarget-indirect",
       "redirect a data-section dispatch slot outside its proved target set"},
  };
  return catalog;
}

std::string_view to_string(MutationKind kind) {
  return mutator_catalog().at(static_cast<std::size_t>(kind)).name;
}

MutationKind parse_mutation_kind(std::string_view name) {
  for (const auto& info : mutator_catalog())
    if (info.name == name) return info.kind;
  std::string known;
  for (const auto& info : mutator_catalog()) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  throw Error("unknown mutator '" + std::string(name) + "' (known: " + known +
              ")");
}

std::string Mutation::describe() const {
  std::string out(to_string(kind));
  switch (kind) {
    case MutationKind::kBitFlip:
      out += " w" + std::to_string(a) + " b" + std::to_string(b);
      break;
    case MutationKind::kWordPatch:
      out += " w" + std::to_string(a);
      break;
    case MutationKind::kWordRelocate:
      out += " " + std::to_string(a) + "->" + std::to_string(b);
      break;
    case MutationKind::kBlockSplice:
      out += " " + std::to_string(a) + "->" + std::to_string(b);
      break;
    case MutationKind::kHeaderForge:
      out += " blk" + std::to_string(a) + " h" + std::to_string(b);
      break;
    case MutationKind::kCrossVersionSplice:
      out += " blk" + std::to_string(a);
      break;
    case MutationKind::kFetchFault:
      out += " fetch" + std::to_string(a) + " b" + std::to_string(b);
      break;
    case MutationKind::kRetargetIndirect:
      out += " d" + std::to_string(a) + " ->" + std::to_string(b);
      break;
  }
  return out;
}

Mutation generate(Rng& rng, const ImageGeometry& g) {
  Mutation m;
  // Weighted kind mix (out of 100): flips dominate like AFL's deterministic
  // stage; the structured kinds (splice, forge, cross-version) each get a
  // steady share so every campaign exercises every rule.
  const std::uint64_t roll = rng.next_below(100);
  if (roll < 34)
    m.kind = MutationKind::kBitFlip;
  else if (roll < 40)
    // Retargets need live dispatch slots (a gating scheme with surviving
    // indirect jumps); without them the share degrades to a bit flip.
    m.kind = g.dispatch_slots.empty() ? MutationKind::kBitFlip
                                      : MutationKind::kRetargetIndirect;
  else if (roll < 55)
    m.kind = MutationKind::kWordPatch;
  else if (roll < 65)
    m.kind = MutationKind::kWordRelocate;
  else if (roll < 75)
    m.kind = MutationKind::kBlockSplice;
  else if (roll < 85)
    m.kind = MutationKind::kHeaderForge;
  else if (roll < 95)
    m.kind = MutationKind::kCrossVersionSplice;
  else
    m.kind = MutationKind::kFetchFault;

  switch (m.kind) {
    case MutationKind::kBitFlip:
      m.a = rng.next_below(g.text_words);
      m.b = rng.next_below(32);
      break;
    case MutationKind::kWordPatch:
      m.a = rng.next_below(g.text_words);
      m.b = rng.next_u32();
      break;
    case MutationKind::kWordRelocate:
      m.a = rng.next_below(g.text_words);
      m.b = rng.next_below(g.text_words);
      break;
    case MutationKind::kBlockSplice:
      m.a = rng.next_below(g.blocks());
      m.b = rng.next_below(g.blocks());
      break;
    case MutationKind::kHeaderForge:
      m.a = rng.next_below(g.blocks());
      m.b = rng.next_below(2);  // both block types carry >= 2 header words
      m.c = rng.next_below(0xFFFFFFFFull) + 1;  // nonzero mask
      break;
    case MutationKind::kCrossVersionSplice:
      m.a = rng.next_below(g.blocks());
      break;
    case MutationKind::kFetchFault:
      // Early fetches are the interesting ones: the clean run's fetch count
      // is O(text), so bound the schedule by a small multiple of it.
      m.a = rng.next_below(4ull * g.text_words);
      m.b = rng.next_below(32);
      break;
    case MutationKind::kRetargetIndirect: {
      m.a = g.dispatch_slots[rng.next_below(g.dispatch_slots.size())];
      // Draw a sealed text word that is NOT a declared indirect entry: an
      // in-set rewire is admitted by the target-set policy, so only
      // out-of-set redirects measure the defense. The declared set is
      // always a strict subset of the text, so the skip loop terminates.
      std::uint32_t w = static_cast<std::uint32_t>(rng.next_below(g.text_words));
      while (std::binary_search(g.indirect_targets.begin(),
                                g.indirect_targets.end(),
                                g.text_base + 4 * w))
        w = (w + 1) % g.text_words;
      m.b = g.text_base + 4ull * w;
      break;
    }
  }
  return m;
}

MutationRecord generate_record(Rng& rng, const ImageGeometry& g) {
  // Mostly single mutations (attribution stays sharp); one in four records
  // is a 2-3 mutation combination to hunt interaction escapes.
  std::size_t count = 1;
  if (rng.next_below(4) == 0) count = 2 + rng.next_below(2);
  MutationRecord record;
  record.reserve(count);
  bool have_fault = false;
  for (std::size_t i = 0; i < count; ++i) {
    Mutation m = generate(rng, g);
    if (m.kind == MutationKind::kFetchFault) {
      if (have_fault) {
        // SimConfig carries a single fault slot; degrade the duplicate to a
        // bit flip reusing the drawn parameters (still in range).
        m.kind = MutationKind::kBitFlip;
        m.a %= g.text_words;
      } else {
        have_fault = true;
      }
    }
    record.push_back(m);
  }
  return record;
}

namespace {

std::uint32_t checked_word(const assembler::LoadImage& image, std::uint64_t w,
                           const Mutation& m) {
  if (w >= image.text.size())
    throw Error("mutation '" + m.describe() + "': word index " +
                std::to_string(w) + " out of range for " +
                std::to_string(image.text.size()) + " text words");
  return static_cast<std::uint32_t>(w);
}

std::uint32_t checked_block(const assembler::LoadImage& image,
                            std::uint32_t words_per_block, std::uint64_t blk,
                            const Mutation& m) {
  const std::uint64_t blocks = image.text.size() / words_per_block;
  if (blk >= blocks)
    throw Error("mutation '" + m.describe() + "': block index " +
                std::to_string(blk) + " out of range for " +
                std::to_string(blocks) + " blocks");
  return static_cast<std::uint32_t>(blk);
}

}  // namespace

void apply(const Mutation& m, assembler::LoadImage& image,
           sim::SimConfig& config, const ApplyContext& ctx) {
  const std::uint32_t b = ctx.words_per_block;
  switch (m.kind) {
    case MutationKind::kBitFlip:
      image.text[checked_word(image, m.a, m)] ^= (1u << (m.b & 31));
      break;
    case MutationKind::kWordPatch:
      image.text[checked_word(image, m.a, m)] =
          static_cast<std::uint32_t>(m.b);
      break;
    case MutationKind::kWordRelocate: {
      const std::uint32_t from = checked_word(image, m.a, m);
      const std::uint32_t to = checked_word(image, m.b, m);
      image.text[to] = image.text[from];
      break;
    }
    case MutationKind::kBlockSplice: {
      const std::uint32_t from = checked_block(image, b, m.a, m);
      const std::uint32_t to = checked_block(image, b, m.b, m);
      for (std::uint32_t j = 0; j < b; ++j)
        image.text[to * b + j] = image.text[from * b + j];
      break;
    }
    case MutationKind::kHeaderForge: {
      const std::uint32_t blk = checked_block(image, b, m.a, m);
      if (m.b >= 2)
        throw Error("mutation '" + m.describe() +
                    "': header word offset must be 0 or 1");
      image.text[blk * b + static_cast<std::uint32_t>(m.b)] ^=
          static_cast<std::uint32_t>(m.c);
      break;
    }
    case MutationKind::kCrossVersionSplice: {
      if (ctx.donor == nullptr)
        throw Error("mutation '" + m.describe() +
                    "': no donor image configured");
      const std::uint32_t blk = checked_block(image, b, m.a, m);
      if ((blk + 1ull) * b > ctx.donor->text.size())
        throw Error("mutation '" + m.describe() +
                    "': block out of range for the donor image");
      for (std::uint32_t j = 0; j < b; ++j)
        image.text[blk * b + j] = ctx.donor->text[blk * b + j];
      break;
    }
    case MutationKind::kFetchFault:
      config.fault.enabled = true;
      config.fault.fetch_index = m.a;
      config.fault.bit = static_cast<unsigned>(m.b & 31);
      break;
    case MutationKind::kRetargetIndirect: {
      if (m.a % 4 != 0 || m.a + 4 > image.data.size())
        throw Error("mutation '" + m.describe() + "': data offset " +
                    std::to_string(m.a) + " out of range for " +
                    std::to_string(image.data.size()) + " data bytes");
      for (std::uint32_t j = 0; j < 4; ++j)
        image.data[m.a + j] = static_cast<std::uint8_t>(m.b >> (8 * j));
      break;
    }
  }
}

void apply(const MutationRecord& record, assembler::LoadImage& image,
           sim::SimConfig& config, const ApplyContext& ctx) {
  for (const Mutation& m : record) apply(m, image, config, ctx);
}

void to_json(const Mutation& m, json::Writer& w) {
  w.begin_object();
  w.member("kind", to_string(m.kind));
  w.member("a", m.a);
  w.member("b", m.b);
  w.member("c", m.c);
  w.end_object();
}

Mutation mutation_from_json(const json::Value& v) {
  const auto* kind = v.find("kind");
  const auto* a = v.find("a");
  const auto* b = v.find("b");
  const auto* c = v.find("c");
  if (kind == nullptr || a == nullptr || b == nullptr || c == nullptr)
    throw Error("mutation record: missing kind/a/b/c");
  Mutation m;
  m.kind = parse_mutation_kind(kind->as_string("kind"));
  m.a = a->as_uint("a");
  m.b = b->as_uint("b");
  m.c = c->as_uint("c");
  return m;
}

}  // namespace sofia::campaign
