// Composable, replayable image mutations — the campaign engine's attack
// vocabulary. Each Mutation is one primitive tamper (the AttackHarness
// one-shot attacks, generalized into data): a record is an ordered list of
// mutations applied to a fresh copy of the hardened image (and, for the
// fault-schedule kind, to the SimConfig), so any trial — including a
// minimized counterexample pulled out of a campaign JSON — replays exactly.
//
// Generation is pure: generate_record(rng, geometry) draws only from the
// passed Rng, so a per-job substream (Rng::fork of the campaign seed by job
// index) makes every trial byte-reproducible for any thread count or shard
// split.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "assembler/image.hpp"
#include "sim/config.hpp"
#include "support/rng.hpp"

namespace sofia::json {
class Writer;
struct Value;
}

namespace sofia::campaign {

/// The mutation primitives, in catalog order. Parameter meaning (a, b, c)
/// is per kind; unused parameters are zero.
enum class MutationKind : std::uint8_t {
  kBitFlip,             ///< flip bit b of ciphertext word a
  kWordPatch,           ///< overwrite ciphertext word a with value b
  kWordRelocate,        ///< copy ciphertext word a over word b
  kBlockSplice,         ///< copy encrypted block a over block b
  kHeaderForge,         ///< XOR header word b (0/1) of block a with mask c
  kCrossVersionSplice,  ///< replace block a with the donor-omega build's block a
  kFetchFault,          ///< transient fault: flip bit b of the a-th fetched word
  kRetargetIndirect,    ///< overwrite dispatch slot at data offset a with address b
};

inline constexpr std::size_t kMutationKindCount = 8;

std::string_view to_string(MutationKind kind);

/// Parse a catalog name ("bit-flip", ...); throws sofia::Error listing the
/// catalog for anything unknown.
MutationKind parse_mutation_kind(std::string_view name);

/// One catalog row (the sofia_attack --mutators table and the README).
struct MutatorInfo {
  MutationKind kind;
  std::string_view name;
  std::string_view description;
};

/// All mutators in enum order.
const std::vector<MutatorInfo>& mutator_catalog();

struct Mutation {
  MutationKind kind = MutationKind::kBitFlip;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  bool operator==(const Mutation&) const = default;

  /// Human-readable one-liner, e.g. "bit-flip w12 b7".
  std::string describe() const;
};

/// An ordered list of mutations — one trial's full tamper schedule.
using MutationRecord = std::vector<Mutation>;

/// What generation needs to know about the victim image.
struct ImageGeometry {
  std::uint32_t text_words = 0;
  std::uint32_t words_per_block = 8;
  std::uint32_t text_base = 0;
  /// Byte offsets of aligned data words holding a declared indirect-entry
  /// address (the jalr-reachable dispatch slots). Empty when the active
  /// scheme devirtualizes indirect jumps — retargets are never generated.
  std::vector<std::uint32_t> dispatch_slots;
  /// Sorted canonical indirect-entry byte addresses (the union of every
  /// declared target set). Generation steers retargets OUTSIDE this set:
  /// an in-set rewire is a transfer the target-set policy deliberately
  /// admits, so it is not a detectable tamper.
  std::vector<std::uint32_t> indirect_targets;

  std::uint32_t blocks() const { return text_words / words_per_block; }
};

/// Draw one mutation of a uniform-weighted kind mix (bit flips dominate,
/// AFL-style). Parameters are bounded by the geometry.
Mutation generate(Rng& rng, const ImageGeometry& geometry);

/// Draw a full record: usually one mutation, sometimes a 2-3 mutation
/// combination. At most one fetch-fault per record (SimConfig carries a
/// single fault slot); a second draw degrades to a bit flip.
MutationRecord generate_record(Rng& rng, const ImageGeometry& geometry);

/// Fixture-owned donor material for the cross-version kind.
struct ApplyContext {
  std::uint32_t words_per_block = 8;
  /// The same program sealed under a different version nonce omega;
  /// nullptr makes kCrossVersionSplice an error.
  const assembler::LoadImage* donor = nullptr;
};

/// Apply one mutation to the trial's image/config copies. Out-of-range
/// parameters and a missing donor throw sofia::Error naming the mutation —
/// generated records are always in range; hand-written replays may not be.
void apply(const Mutation& m, assembler::LoadImage& image,
           sim::SimConfig& config, const ApplyContext& ctx);

/// Apply a whole record in order.
void apply(const MutationRecord& record, assembler::LoadImage& image,
           sim::SimConfig& config, const ApplyContext& ctx);

/// Emit as a JSON object: {"kind": name, "a": .., "b": .., "c": ..}.
void to_json(const Mutation& m, json::Writer& w);

/// Parse the to_json form back; throws sofia::Error on malformed records.
Mutation mutation_from_json(const json::Value& v);

}  // namespace sofia::campaign
