#include "campaign/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "assembler/image_io.hpp"
#include "driver/pool.hpp"
#include "pipeline/pipeline.hpp"
#include "remote/codec.hpp"
#include "scheme/scheme.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "workloads/workloads.hpp"

namespace sofia::campaign {

namespace {

// The built-in victim: a loop of calls (mux-entry blocks), a jump-form
// function-pointer dispatch (devirtualized under non-gating schemes, a
// live gated jalr — and retarget surface — under flta), and observable
// stores: enough block variety that every mutator kind lands on live
// structure.
constexpr char kBuiltinVictim[] = R"(
main:
  li r1, 0
  li r2, 12
loop:
  call work
  addi r2, r2, -1
  bnez r2, loop
  la r4, table
  lw r5, 0(r4)
  .targets inc, dec
  jr r5
join:
  la r3, out
  sw r1, 0(r3)
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
work:
  addi r1, r1, 3
  beqz r1, never
  addi r1, r1, 1
never:
  ret
inc:
  addi r1, r1, 1
  j join
dec:
  addi r1, r1, -1
  j join
.data
table: .word inc, dec
out: .word 0
)";

/// Tampered runs can loop on garbage; every trial gets a bounded budget.
constexpr std::uint64_t kTrialBudget = 10'000'000;

}  // namespace

std::string CellSpec::label() const {
  std::string out = scheme;
  out += '/';
  out += crypto::to_string(cipher);
  out += '/';
  out += crypto::to_string(granularity);
  return out;
}

CampaignSpec default_campaign() {
  CampaignSpec spec;
  for (const auto& entry : scheme::scheme_registry()) {
    const bool uses_gran = entry.get().traits().uses_granularity;
    for (const auto cipher :
         {crypto::CipherKind::kRectangle80, crypto::CipherKind::kSpeck64_128}) {
      for (const auto gran :
           {crypto::Granularity::kPerPair, crypto::Granularity::kPerWord}) {
        // A scheme that ignores the granularity axis seals identical bytes
        // for both values — one cell covers it.
        if (gran == crypto::Granularity::kPerWord && !uses_gran) continue;
        spec.cells.push_back(
            CellSpec{std::string(entry.name), cipher, gran});
      }
    }
  }
  return spec;
}

CampaignSpec smoke(CampaignSpec spec) {
  spec.name += "-smoke";
  std::vector<CellSpec> kept;
  for (const auto& cell : spec.cells) {
    const bool seen = std::any_of(
        kept.begin(), kept.end(),
        [&](const CellSpec& k) { return k.scheme == cell.scheme; });
    if (!seen) kept.push_back(cell);
  }
  spec.cells = std::move(kept);
  return spec;
}

std::string_view to_string(TrialClass cls) {
  switch (cls) {
    case TrialClass::kDetected: return "detected";
    case TrialClass::kHarmless: return "harmless";
    case TrialClass::kEscaped: return "escaped";
  }
  return "?";
}

TrialClass classify(const sim::RunResult& run,
                    const std::string& clean_output) {
  if (run.status == sim::RunResult::Status::kReset) return TrialClass::kDetected;
  if (run.ok() && run.output == clean_output) return TrialClass::kHarmless;
  return TrialClass::kEscaped;
}

MutationRecord minimize(
    const MutationRecord& record,
    const std::function<TrialClass(const MutationRecord&)>& trial) {
  MutationRecord current = record;
  for (std::size_t i = 0; i < current.size();) {
    if (current.size() == 1) break;  // already minimal; never try the empty record
    MutationRecord candidate;
    candidate.reserve(current.size() - 1);
    for (std::size_t j = 0; j < current.size(); ++j)
      if (j != i) candidate.push_back(current[j]);
    if (trial(candidate) == TrialClass::kEscaped) {
      current = std::move(candidate);  // the next element shifted into slot i
    } else {
      ++i;
    }
  }
  return current;
}

double CellResult::detection_rate() const {
  const std::uint64_t effective = detected + escaped;
  if (effective == 0) return 1.0;
  return static_cast<double>(detected) / static_cast<double>(effective);
}

std::uint64_t CampaignResult::jobs_run() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells) total += cell.jobs;
  return total;
}

bool CampaignResult::authenticated_clean() const {
  return std::all_of(cells.begin(), cells.end(), [](const CellResult& c) {
    return !c.authenticated || c.escapes.empty();
  });
}

// ---------------------------------------------------------------------------
// Shared JSON helpers (the shard merge and the result-cache payload codec)
// ---------------------------------------------------------------------------

namespace {

constexpr std::string_view kSchema = "sofia-attack-campaign-v1";

void record_to_json(const MutationRecord& record, json::Writer& w) {
  w.begin_array();
  for (const Mutation& m : record) to_json(m, w);
  w.end_array();
}

const json::Value& req(const json::Value& doc, std::string_view key,
                       const std::string& label) {
  const auto* v = doc.find(key);
  if (v == nullptr)
    throw Error("merge: " + label + " is missing '" + std::string(key) + "'");
  return *v;
}

bool as_bool(const json::Value& v, std::string_view context) {
  if (v.kind != json::Value::Kind::kBool)
    throw Error("merge: '" + std::string(context) + "' is not a boolean");
  return v.boolean;
}

crypto::Granularity parse_granularity(const std::string& name) {
  for (const auto g :
       {crypto::Granularity::kPerPair, crypto::Granularity::kPerWord})
    if (crypto::to_string(g) == name) return g;
  throw Error("merge: unknown granularity '" + name + "'");
}

sim::ResetCause parse_cause(const std::string& name) {
  for (std::size_t i = 0; i < kResetCauseCount; ++i)
    if (sim::to_string(static_cast<sim::ResetCause>(i)) == name)
      return static_cast<sim::ResetCause>(i);
  throw Error("merge: unknown reset cause '" + name + "'");
}

verify::Rule parse_rule(const std::string& name) {
  for (const auto& info : verify::rule_catalog())
    if (info.name == name) return info.rule;
  throw Error("merge: unknown lint rule '" + name + "'");
}

MutationRecord record_from_json(const json::Value& v,
                                std::string_view context) {
  MutationRecord record;
  for (const auto& m : v.as_array(context))
    record.push_back(mutation_from_json(m));
  return record;
}

}  // namespace

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

/// One matrix cell's prepared attack surface: the victim transformed once,
/// the donor build for cross-version splices, the clean-run baseline and
/// the static-lint reference. All trial-time access is const.
struct Fixture {
  std::unique_ptr<pipeline::Pipeline> session;
  assembler::LoadImage base_image;
  std::string clean_output;
  verify::ProgramModel model;
  verify::DeviceSpec device_spec;
  assembler::LoadImage donor;
  ImageGeometry geometry;
  sim::SimConfig base_config;
  /// Digest over the cell's whole attack surface (profile fingerprint,
  /// base + donor image bytes, canonical SimConfig encoding, campaign
  /// seed) — the per-trial cache key is (this, global job index).
  std::string cache_digest;

  /// Built per call (never stored): a stored donor pointer would dangle
  /// the moment the fixture moves into its slot.
  ApplyContext ctx() const { return {geometry.words_per_block, &donor}; }
};

pipeline::DeviceProfile cell_profile(const CampaignSpec& spec,
                                     const CellSpec& cell) {
  auto profile = pipeline::DeviceProfile::from_seed(cell.cipher, spec.seed);
  profile.granularity = cell.granularity;
  profile.scheme = pipeline::DeviceProfile::parse_scheme(cell.scheme);
  profile.backend = pipeline::DeviceProfile::parse_backend(spec.backend);
  return profile;
}

std::unique_ptr<pipeline::Pipeline> victim_session(
    const CampaignSpec& spec, const pipeline::DeviceProfile& profile,
    const std::string& name) {
  if (spec.workload.empty()) {
    return std::make_unique<pipeline::Pipeline>(
        pipeline::Pipeline::from_source(kBuiltinVictim, profile, name));
  }
  const auto& wl = workloads::workload(spec.workload);
  const std::uint32_t size = spec.size != 0 ? spec.size : wl.default_size;
  return std::make_unique<pipeline::Pipeline>(
      pipeline::Pipeline::from_workload(wl, spec.seed, size, profile));
}

Fixture make_fixture(const CampaignSpec& spec, const CellSpec& cell) {
  Fixture fx;
  const auto profile = cell_profile(spec, cell);
  fx.session = victim_session(spec, profile, "campaign-victim");
  sim::SimConfig config;
  config.max_cycles = kTrialBudget;
  fx.session->set_sim_config(config);

  fx.base_image = fx.session->hardened().image;
  const auto& clean = fx.session->run();
  if (!clean.ok())
    throw Error("campaign[" + cell.label() + "]: clean run failed: " +
                std::string(to_string(clean.status)));
  fx.clean_output = clean.output;
  fx.model = verify::model_of(fx.session->hardened());
  fx.device_spec = fx.session->device_spec();

  // The donor: the same program sealed under another version nonce (the
  // cross-version replay's ingredient). Built through its own session so
  // the toolchain stages stay byte-faithful to a real rollout.
  auto donor_profile = profile;
  donor_profile.omega_override = spec.donor_omega;
  auto donor_session = victim_session(spec, donor_profile, "campaign-donor");
  fx.donor = donor_session->hardened().image;

  fx.geometry.text_words = static_cast<std::uint32_t>(fx.base_image.text.size());
  fx.geometry.words_per_block = profile.policy.words_per_block;
  fx.geometry.text_base = fx.base_image.text_base;
  // The retarget surface: the union of every declared indirect target set,
  // and the aligned data words initially holding one of those addresses
  // (the dispatch slots a surviving jalr reads its target from). Both stay
  // empty under schemes that devirtualize indirect jumps.
  std::vector<std::uint32_t> targets;
  for (const auto& blk : fx.model.blocks)
    targets.insert(targets.end(), blk.jalr_targets.begin(),
                   blk.jalr_targets.end());
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  fx.geometry.indirect_targets = std::move(targets);
  if (!fx.geometry.indirect_targets.empty()) {
    const auto& data = fx.base_image.data;
    for (std::uint32_t off = 0; off + 4 <= data.size(); off += 4) {
      std::uint32_t value = 0;
      for (std::uint32_t j = 0; j < 4; ++j)
        value |= static_cast<std::uint32_t>(data[off + j]) << (8 * j);
      if (std::binary_search(fx.geometry.indirect_targets.begin(),
                             fx.geometry.indirect_targets.end(), value))
        fx.geometry.dispatch_slots.push_back(off);
    }
  }
  fx.base_config = fx.session->sim_config();

  cache::KeyBuilder kb("sofia-cache-key-v1/campaign-fixture");
  kb.field("profile", profile.fingerprint());
  kb.field("base_image", assembler::serialize_image(fx.base_image));
  kb.field("donor", assembler::serialize_image(fx.donor));
  kb.field("config",
           remote::encode_config(fx.session->effective_sim_config()));
  kb.field("seed", spec.seed);
  fx.cache_digest = cache::to_hex(kb.finish());
  return fx;
}

/// Apply a record to fresh copies and execute (the one trial primitive the
/// classifier, the minimizer and the replay all share).
sim::RunResult execute(const Fixture& fx, const MutationRecord& record) {
  auto image = fx.base_image;
  sim::SimConfig config = fx.base_config;
  apply(record, image, config, fx.ctx());
  return fx.session->run_image(image, config);
}

/// One trial's folded outcome (index-owned slot in the pool).
struct Trial {
  TrialClass cls = TrialClass::kHarmless;
  sim::ResetCause cause = sim::ResetCause::kNone;
  std::uint64_t insts = 0;
  MutationRecord record;
  EscapeRecord escape;     ///< valid when cls == kEscaped
  bool from_cache = false;  ///< served without executing (not in the JSON)
};

// ---- result-cache payload codec -------------------------------------------

constexpr std::string_view kTrialKind = "campaign-trial";
constexpr std::string_view kTrialPayloadSchema =
    "sofia-cache-campaign-trial-v1";

std::string encode_trial_payload(const Trial& t) {
  json::Writer w(-1);
  w.begin_object();
  w.member("schema", kTrialPayloadSchema);
  w.member("cls", to_string(t.cls));
  w.member("cause", sim::to_string(t.cause));
  w.member("insts", t.insts);
  w.key("record");
  record_to_json(t.record, w);
  if (t.cls == TrialClass::kEscaped) {
    w.key("escape").begin_object();
    w.member("job", t.escape.job);
    w.member("status", t.escape.status);
    w.member("output_clean", t.escape.output_clean);
    w.key("mutations");
    record_to_json(t.escape.applied, w);
    w.key("minimized");
    record_to_json(t.escape.minimized, w);
    w.key("lint").begin_array();
    for (const verify::Rule rule : t.escape.lint)
      w.value(verify::to_string(rule));
    w.end_array();
    w.end_object();
  }
  w.end_object();
  return w.str();
}

TrialClass parse_class(const std::string& name) {
  for (const auto cls : {TrialClass::kDetected, TrialClass::kHarmless,
                         TrialClass::kEscaped})
    if (to_string(cls) == name) return cls;
  throw Error("cache payload: unknown trial class '" + name + "'");
}

/// Decode a cached trial; returns false (t untouched) on any mismatch, so
/// a stale or foreign payload degrades to a miss, never a crash.
bool decode_trial_payload(const std::string& payload, Trial& t) {
  try {
    const json::Value doc = json::parse(payload);
    const auto* schema = doc.find("schema");
    if (schema == nullptr ||
        schema->as_string("schema") != kTrialPayloadSchema)
      return false;
    const std::string label = "cached trial";
    Trial out;
    out.cls = parse_class(req(doc, "cls", label).as_string("cls"));
    out.cause = parse_cause(req(doc, "cause", label).as_string("cause"));
    out.insts = req(doc, "insts", label).as_uint("insts");
    out.record = record_from_json(req(doc, "record", label), "record");
    if (out.cls == TrialClass::kEscaped) {
      const auto& je = req(doc, "escape", label);
      out.escape.job = req(je, "job", label).as_uint("job");
      out.escape.status = req(je, "status", label).as_string("status");
      out.escape.output_clean =
          as_bool(req(je, "output_clean", label), "output_clean");
      out.escape.applied =
          record_from_json(req(je, "mutations", label), "mutations");
      out.escape.minimized =
          record_from_json(req(je, "minimized", label), "minimized");
      for (const auto& rule : req(je, "lint", label).as_array("lint"))
        out.escape.lint.push_back(parse_rule(rule.as_string("lint")));
    }
    t = std::move(out);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

Trial run_trial(const Fixture& fx, std::uint64_t job, const Rng& base,
                cache::ResultStore* store) {
  Trial t;
  cache::Key key{};
  if (store != nullptr) {
    cache::KeyBuilder kb("sofia-cache-key-v1/campaign-trial");
    kb.field("fixture", fx.cache_digest);
    kb.field("job", job);
    key = kb.finish();
    if (auto payload = store->load(key, kTrialKind)) {
      if (decode_trial_payload(*payload, t)) {
        t.from_cache = true;
        return t;
      }
      store->warn("cache: campaign-trial payload for job " +
                  std::to_string(job) + " is undecodable; re-executing");
    }
  }
  bool trial_error = false;
  try {
    Rng rng = base.fork(job);
    t.record = generate_record(rng, fx.geometry);
    const auto run = execute(fx, t.record);
    t.cls = classify(run, fx.clean_output);
    t.cause = run.reset.cause;
    t.insts = run.stats.insts;
    if (t.cls == TrialClass::kEscaped) {
      t.escape.job = job;
      t.escape.status = std::string(to_string(run.status));
      t.escape.output_clean = run.output == fx.clean_output;
      t.escape.applied = t.record;
      t.escape.minimized = minimize(t.record, [&](const MutationRecord& r) {
        return classify(execute(fx, r), fx.clean_output);
      });
      // Static-layer attribution: which lint rules fire on the tampered
      // image (none for pure fault schedules — those are invisible offline).
      auto image = fx.base_image;
      sim::SimConfig config = fx.base_config;
      apply(t.record, image, config, fx.ctx());
      t.escape.lint =
          verify::error_rules(verify::lint(fx.model, image, fx.device_spec));
    }
  } catch (const std::exception& e) {
    // A trial-level failure (replay error, backend transport loss) is an
    // escape with the error as its status: loud in the document, gating
    // the exit code, never sinking the campaign.
    trial_error = true;
    t.cls = TrialClass::kEscaped;
    t.escape.job = job;
    t.escape.status = std::string("error: ") + e.what();
    t.escape.applied = t.record;
    t.escape.minimized = t.record;
  }
  // Deterministic outcomes are cacheable; environmental failures (the
  // catch path — e.g. a lost transport) must retry on the next run.
  if (store != nullptr && !trial_error)
    store->store(key, kTrialKind, encode_trial_payload(t));
  return t;
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec, unsigned threads,
                            const CellProgressFn& progress,
                            driver::ShardSpec shard,
                            cache::ResultStore* store) {
  shard.validate();
  if (spec.cells.empty()) throw Error("campaign: no matrix cells");
  if (spec.jobs_per_cell == 0)
    throw Error("campaign: jobs_per_cell must be >= 1");

  // This shard's slice of the global job list (index ≡ shard.index mod
  // count), exactly the sweep driver's discipline.
  std::vector<std::uint64_t> jobs;
  const std::uint64_t total = spec.total_jobs();
  for (std::uint64_t g = shard.index; g < total; g += shard.count)
    jobs.push_back(g);

  // Build fixtures only for cells this shard actually touches.
  std::vector<std::unique_ptr<Fixture>> fixtures(spec.cells.size());
  for (const std::uint64_t g : jobs) {
    const std::size_t cell = g / spec.jobs_per_cell;
    if (!fixtures[cell])
      fixtures[cell] = std::make_unique<Fixture>(
          make_fixture(spec, spec.cells[cell]));
  }

  CampaignResult result;
  result.spec = spec;
  result.shard = shard;

  std::vector<Trial> trials(jobs.size());
  const Rng base(spec.seed);
  const auto t0 = std::chrono::steady_clock::now();
  result.threads_used =
      driver::for_each_index(jobs.size(), threads, [&](std::size_t i) {
        const std::uint64_t g = jobs[i];
        trials[i] =
            run_trial(*fixtures[g / spec.jobs_per_cell], g, base, store);
      });
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Fold in job-index order (trials[] is already index-sorted), so tallies
  // and escape lists are independent of thread interleaving.
  result.cells.resize(spec.cells.size());
  for (std::size_t c = 0; c < spec.cells.size(); ++c) {
    auto& cell = result.cells[c];
    cell.cell = spec.cells[c];
    cell.authenticated =
        scheme::get_scheme(spec.cells[c].scheme).traits().authenticated;
    cell.latency_min = ~0ull;
  }
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const Trial& t = trials[i];
    auto& cell = result.cells[jobs[i] / spec.jobs_per_cell];
    if (t.from_cache) ++result.cached_trials;
    ++cell.jobs;
    for (const Mutation& m : t.record)
      ++cell.mutations[static_cast<std::size_t>(m.kind)];
    switch (t.cls) {
      case TrialClass::kDetected:
        ++cell.detected;
        ++cell.causes[static_cast<std::size_t>(t.cause)];
        cell.latency_min = std::min(cell.latency_min, t.insts);
        cell.latency_max = std::max(cell.latency_max, t.insts);
        cell.latency_total += t.insts;
        break;
      case TrialClass::kHarmless:
        ++cell.harmless;
        break;
      case TrialClass::kEscaped:
        ++cell.escaped;
        cell.escapes.push_back(t.escape);
        break;
    }
  }
  for (auto& cell : result.cells) {
    if (cell.detected == 0) cell.latency_min = 0;
    if (progress) progress(cell);
  }
  return result;
}

// ---------------------------------------------------------------------------
// JSON document
// ---------------------------------------------------------------------------

std::string to_json(const CampaignResult& result) {
  json::Writer w(2);
  w.begin_object();
  w.member("schema", kSchema);
  w.member("campaign", result.spec.name);
  w.member("victim", result.spec.workload.empty() ? "builtin"
                                                  : result.spec.workload);
  w.member("size", result.spec.size);
  w.member("backend", result.spec.backend);
  w.member("seed", result.spec.seed);
  w.member("donor_omega",
           static_cast<std::uint64_t>(result.spec.donor_omega));
  w.member("jobs_per_cell",
           static_cast<std::uint64_t>(result.spec.jobs_per_cell));
  w.member("job_count", result.spec.total_jobs());
  if (!result.shard.is_whole())
    w.member("shard", std::to_string(result.shard.index) + "/" +
                          std::to_string(result.shard.count));
  w.key("cells").begin_array();
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const CellResult& cell = result.cells[c];
    w.begin_object();
    w.member("index", static_cast<std::uint64_t>(c));
    w.member("scheme", cell.cell.scheme);
    w.member("cipher", crypto::to_string(cell.cell.cipher));
    w.member("granularity", crypto::to_string(cell.cell.granularity));
    w.member("authenticated", cell.authenticated);
    w.member("jobs", cell.jobs);
    w.member("detected", cell.detected);
    w.member("harmless", cell.harmless);
    w.member("escaped", cell.escaped);
    w.member("detection_rate", cell.detection_rate());
    w.key("causes").begin_object();
    for (std::size_t i = 0; i < kResetCauseCount; ++i)
      if (cell.causes[i] != 0)
        w.member(sim::to_string(static_cast<sim::ResetCause>(i)),
                 cell.causes[i]);
    w.end_object();
    w.key("mutations").begin_object();
    for (const auto& info : mutator_catalog()) {
      const auto n = cell.mutations[static_cast<std::size_t>(info.kind)];
      if (n != 0) w.member(info.name, n);
    }
    w.end_object();
    if (cell.detected != 0) {
      w.key("latency").begin_object();
      w.member("min_insts", cell.latency_min);
      w.member("max_insts", cell.latency_max);
      w.member("total_insts", cell.latency_total);
      w.member("mean_insts", static_cast<double>(cell.latency_total) /
                                 static_cast<double>(cell.detected));
      w.end_object();
    }
    w.key("escapes").begin_array();
    for (const EscapeRecord& e : cell.escapes) {
      w.begin_object();
      w.member("job", e.job);
      w.member("status", e.status);
      w.member("output_clean", e.output_clean);
      w.key("mutations");
      record_to_json(e.applied, w);
      w.key("minimized");
      record_to_json(e.minimized, w);
      w.key("lint").begin_array();
      for (const verify::Rule rule : e.lint) w.value(verify::to_string(rule));
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

// ---------------------------------------------------------------------------
// Shard merge
// ---------------------------------------------------------------------------

std::string merge_json(const std::vector<std::string>& documents) {
  if (documents.empty()) throw Error("merge: no input documents");

  CampaignResult merged;
  std::vector<bool> shard_seen;
  std::uint32_t shard_count = 0;

  for (std::size_t d = 0; d < documents.size(); ++d) {
    const json::Value doc = json::parse(documents[d]);
    const auto label = "document " + std::to_string(d);
    if (req(doc, "schema", label).as_string("schema") != kSchema)
      throw Error("merge: " + label + " is not a " + std::string(kSchema) +
                  " document");

    CampaignSpec spec;
    spec.name = req(doc, "campaign", label).as_string("campaign");
    const auto victim = req(doc, "victim", label).as_string("victim");
    spec.workload = victim == "builtin" ? "" : victim;
    spec.size =
        static_cast<std::uint32_t>(req(doc, "size", label).as_uint("size"));
    spec.backend = req(doc, "backend", label).as_string("backend");
    spec.seed = req(doc, "seed", label).as_uint("seed");
    spec.donor_omega = static_cast<std::uint16_t>(
        req(doc, "donor_omega", label).as_uint("donor_omega"));
    spec.jobs_per_cell = static_cast<std::uint32_t>(
        req(doc, "jobs_per_cell", label).as_uint("jobs_per_cell"));

    const auto shard_text = driver::ShardSpec::parse(
        req(doc, "shard", label).as_string("shard"));
    if (d == 0) {
      shard_count = shard_text.count;
      if (documents.size() != shard_count)
        throw Error("merge: got " + std::to_string(documents.size()) +
                    " document(s) for " + std::to_string(shard_count) +
                    " shard(s)");
      shard_seen.assign(shard_count, false);
    } else if (shard_text.count != shard_count) {
      throw Error("merge: " + label + " disagrees on the shard count");
    }
    if (shard_seen[shard_text.index])
      throw Error("merge: shard " + std::to_string(shard_text.index) +
                  " appears in more than one document");
    shard_seen[shard_text.index] = true;

    const auto& cells = req(doc, "cells", label).as_array("cells");
    if (d == 0) {
      merged.spec = spec;
      merged.cells.resize(cells.size());
    } else {
      const auto& s = merged.spec;
      if (spec.name != s.name || spec.workload != s.workload ||
          spec.size != s.size || spec.backend != s.backend ||
          spec.seed != s.seed || spec.donor_omega != s.donor_omega ||
          spec.jobs_per_cell != s.jobs_per_cell ||
          cells.size() != merged.cells.size())
        throw Error("merge: " + label +
                    " disagrees with document 0 on the campaign header");
    }

    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto& jc = cells[c];
      const auto cl = label + " cell " + std::to_string(c);
      CellSpec cell_spec;
      cell_spec.scheme = req(jc, "scheme", cl).as_string("scheme");
      cell_spec.cipher = pipeline::DeviceProfile::parse_cipher(
          req(jc, "cipher", cl).as_string("cipher"));
      cell_spec.granularity = parse_granularity(
          req(jc, "granularity", cl).as_string("granularity"));
      auto& out = merged.cells[c];
      if (d == 0) {
        merged.spec.cells.push_back(cell_spec);
        out.cell = cell_spec;
        out.authenticated = as_bool(req(jc, "authenticated", cl), cl);
        out.latency_min = ~0ull;
      } else if (cell_spec.scheme != out.cell.scheme ||
                 cell_spec.cipher != out.cell.cipher ||
                 cell_spec.granularity != out.cell.granularity) {
        throw Error("merge: " + cl + " disagrees on the cell axes");
      }
      out.jobs += req(jc, "jobs", cl).as_uint("jobs");
      const std::uint64_t detected =
          req(jc, "detected", cl).as_uint("detected");
      out.detected += detected;
      out.harmless += req(jc, "harmless", cl).as_uint("harmless");
      out.escaped += req(jc, "escaped", cl).as_uint("escaped");
      for (const auto& [name, count] :
           req(jc, "causes", cl).object)
        out.causes[static_cast<std::size_t>(parse_cause(name))] +=
            count.as_uint("causes");
      for (const auto& [name, count] :
           req(jc, "mutations", cl).object)
        out.mutations[static_cast<std::size_t>(parse_mutation_kind(name))] +=
            count.as_uint("mutations");
      if (detected != 0) {
        const auto& lat = req(jc, "latency", cl);
        out.latency_min = std::min(
            out.latency_min, req(lat, "min_insts", cl).as_uint("min_insts"));
        out.latency_max = std::max(
            out.latency_max, req(lat, "max_insts", cl).as_uint("max_insts"));
        out.latency_total += req(lat, "total_insts", cl).as_uint("total_insts");
      }
      for (const auto& je : req(jc, "escapes", cl).as_array("escapes")) {
        EscapeRecord e;
        e.job = req(je, "job", cl).as_uint("job");
        e.status = req(je, "status", cl).as_string("status");
        e.output_clean = as_bool(req(je, "output_clean", cl), cl);
        e.applied = record_from_json(req(je, "mutations", cl), "mutations");
        e.minimized = record_from_json(req(je, "minimized", cl), "minimized");
        for (const auto& rule : req(je, "lint", cl).as_array("lint"))
          e.lint.push_back(parse_rule(rule.as_string("lint")));
        out.escapes.push_back(std::move(e));
      }
    }
  }

  for (std::uint32_t k = 0; k < shard_count; ++k)
    if (!shard_seen[k])
      throw Error("merge: shard " + std::to_string(k) +
                  " is missing from the inputs");

  for (auto& cell : merged.cells) {
    if (cell.detected == 0) cell.latency_min = 0;
    if (cell.jobs != merged.spec.jobs_per_cell)
      throw Error("merge: cell '" + cell.cell.label() + "' sums to " +
                  std::to_string(cell.jobs) + " job(s), expected " +
                  std::to_string(merged.spec.jobs_per_cell));
    std::sort(cell.escapes.begin(), cell.escapes.end(),
              [](const EscapeRecord& a, const EscapeRecord& b) {
                return a.job < b.job;
              });
  }

  merged.shard = driver::ShardSpec{};  // the canonical unsharded document
  return to_json(merged);
}

}  // namespace sofia::campaign
