// Mutation-based adversarial campaign engine — the dynamic complement of
// src/verify/ (PR 7's static half). Where security::AttackHarness mounts a
// fixed menu of hand-written attacks once, a campaign generates large
// seeded populations of tampered images, forged headers, spliced blocks
// and fault schedules (campaign/mutation.hpp), executes them per matrix
// cell (scheme × cipher × granularity) through the shared driver thread
// pool, and measures the defense: detection rate, detection latency
// (retired instructions until reset), verdict distribution, and — for any
// trial that escapes detection — a greedily minimized, replayable
// counterexample plus a verify::lint attribution of what the static layer
// would have caught.
//
// Determinism contract (the sweep driver's, extended): per-job mutation
// streams are Rng::fork(job index) substreams of the campaign seed, job
// records land in index-owned slots, and to_json() excludes wall-clock —
// so the sofia-attack-campaign-v1 document is byte-identical for any
// --threads and any --shard K/N + merge split.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/result_store.hpp"
#include "campaign/mutation.hpp"
#include "crypto/key_set.hpp"
#include "driver/sweep.hpp"
#include "verify/verify.hpp"

namespace sofia::campaign {

/// One matrix cell: the protection scheme under attack and the cipher /
/// CTR-granularity axes it runs with.
struct CellSpec {
  std::string scheme;
  crypto::CipherKind cipher = crypto::CipherKind::kRectangle80;
  crypto::Granularity granularity = crypto::Granularity::kPerPair;

  /// "sofia-cbcmac/RECTANGLE-80/per-pair" — progress lines and errors.
  std::string label() const;
};

struct CampaignSpec {
  std::string name = "full";
  /// Victim program: empty = the built-in attack victim, otherwise a
  /// workloads registry name (generated with `seed` and `size`).
  std::string workload;
  std::uint32_t size = 0;  ///< workload size; 0 = the registry default
  std::vector<CellSpec> cells;
  std::uint32_t jobs_per_cell = 1000;
  std::uint64_t seed = 1;
  /// Execution backend for every trial (sim::backend_registry() key); the
  /// functional backend is the fleet-scale default.
  std::string backend = "functional";
  /// Version nonce of the donor build cross-version splices graft from.
  std::uint16_t donor_omega = 0xD00D;

  std::uint64_t total_jobs() const {
    return static_cast<std::uint64_t>(cells.size()) * jobs_per_cell;
  }
};

/// The full matrix: every registered scheme × both ciphers × both CTR
/// granularities, built-in victim.
CampaignSpec default_campaign();

/// Shrink to a seconds-long run: one cell per registered scheme (paper
/// cipher, per-pair granularity); jobs_per_cell is left to the caller.
CampaignSpec smoke(CampaignSpec spec);

// ---- trial classification --------------------------------------------------

enum class TrialClass : std::uint8_t {
  kDetected,  ///< the device pulled the reset line
  kHarmless,  ///< run completed with output identical to the clean run
  kEscaped,   ///< anything else: tampering visibly altered the execution
};

std::string_view to_string(TrialClass cls);

/// The paper's criterion, applied per trial: a reset is a detection; a
/// completed run with clean output means the mutation was never fetched
/// (dead code / over-long fault schedule); everything else — wrong output,
/// a simulator fault, a blown cycle budget — escaped the defense.
TrialClass classify(const sim::RunResult& run, const std::string& clean_output);

/// Greedy mutation-subset reduction: drop each mutation in turn, keeping
/// the removal whenever `trial` still reports kEscaped, and return the
/// (locally) minimal record. `trial` is called with candidate records only;
/// a single-mutation record returns unchanged without calling it.
MutationRecord minimize(
    const MutationRecord& record,
    const std::function<TrialClass(const MutationRecord&)>& trial);

// ---- results ---------------------------------------------------------------

/// Mirrors sim::ResetCause (kNone..kTargetSetViolation) for the per-cell
/// verdict tallies; test_campaign pins the two in sync.
inline constexpr std::size_t kResetCauseCount = 8;

/// One surviving counterexample: everything needed to replay and triage it.
struct EscapeRecord {
  std::uint64_t job = 0;  ///< global job index (replay: fork(seed, job))
  std::string status;     ///< run status name ("halted", "max-cycles", ...)
  bool output_clean = false;
  MutationRecord applied;    ///< the full generated record
  MutationRecord minimized;  ///< greedy subset still escaping
  /// Error rules verify::lint fires on the tampered image — what the
  /// static layer would have caught (empty for pure fault schedules).
  std::vector<verify::Rule> lint;
};

struct CellResult {
  CellSpec cell;
  bool authenticated = false;
  std::uint64_t jobs = 0;  ///< trials executed (this shard's slice)
  std::uint64_t detected = 0;
  std::uint64_t harmless = 0;
  std::uint64_t escaped = 0;
  /// Reset-cause tally over detected trials, indexed by sim::ResetCause.
  std::array<std::uint64_t, kResetCauseCount> causes{};
  /// Applied-mutation tally, indexed by MutationKind.
  std::array<std::uint64_t, kMutationKindCount> mutations{};
  /// Detection latency in retired instructions until the reset, over
  /// detected trials (identical across cycle/functional backends).
  std::uint64_t latency_min = 0;
  std::uint64_t latency_max = 0;
  std::uint64_t latency_total = 0;
  std::vector<EscapeRecord> escapes;  ///< sorted by job index

  /// detected / (detected + escaped); 1.0 when no trial tampered
  /// effectively (harmless-only cells defend vacuously).
  double detection_rate() const;
};

struct CampaignResult {
  CampaignSpec spec;
  driver::ShardSpec shard;         ///< which slice the tallies cover
  std::vector<CellResult> cells;   ///< one per spec cell, in spec order
  double wall_seconds = 0;         ///< measured, NOT part of the JSON
  unsigned threads_used = 1;       ///< ditto
  /// Trials served from the result cache (0 without one; NOT in the JSON —
  /// cached and fresh runs must render byte-identically).
  std::uint64_t cached_trials = 0;

  std::uint64_t jobs_run() const;
  /// No escapes in any authenticated cell (the exit-code gate; the "null"
  /// baseline is expected to leak and never gates).
  bool authenticated_clean() const;
};

/// Called after each cell's tallies are folded (in cell order).
using CellProgressFn = std::function<void(const CellResult&)>;

/// Execute the campaign's (sharded) job list on `threads` workers. Builds
/// one fixture per referenced cell (victim transformed once, donor build
/// for cross-version splices, clean-run baseline), runs every trial, and
/// folds results in job-index order. Throws sofia::Error for unusable
/// specs (no cells, zero jobs, unknown scheme/backend/workload, a victim
/// whose clean run fails); per-trial outcomes are data, never errors.
///
/// With a non-null `store`, every trial's outcome is looked up by a digest
/// over the cell's attack surface (profile fingerprint, base + donor image
/// bytes, canonical SimConfig encoding, campaign seed) and the global job
/// index before executing — a killed campaign re-run against the same
/// cache resumes from disk and converges to the same bytes.
CampaignResult run_campaign(const CampaignSpec& spec, unsigned threads,
                            const CellProgressFn& progress = {},
                            driver::ShardSpec shard = {},
                            cache::ResultStore* store = nullptr);

/// Render as a deterministic sofia-attack-campaign-v1 document.
std::string to_json(const CampaignResult& result);

/// Merge one shard document per shard index back into the canonical
/// unsharded document — byte-identical to a single-machine run. Inputs
/// must agree on every header field, carry distinct "shard" members K/N
/// with exactly N documents, and sum to jobs_per_cell everywhere; throws
/// sofia::Error otherwise.
std::string merge_json(const std::vector<std::string>& documents);

}  // namespace sofia::campaign
