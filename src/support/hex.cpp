#include "support/hex.hpp"

#include <cstdio>

namespace sofia {

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string hex32_0x(std::uint32_t v) { return "0x" + hex32(v); }

std::string hexdump_words(std::span<const std::uint32_t> words,
                          std::uint32_t base_addr) {
  std::string out;
  for (std::size_t i = 0; i < words.size(); i += 4) {
    out += hex32(base_addr + static_cast<std::uint32_t>(i * 4));
    out += ":";
    for (std::size_t j = i; j < i + 4 && j < words.size(); ++j) {
      out += " ";
      out += hex32(words[j]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace sofia
