// Thin measurement veneer over pipeline::Pipeline for the benches, the
// sweep driver and sofia_report: one call = one workload measured on the
// vanilla core and through the full SOFIA pipeline. The heavy lifting
// (staging, caching, golden-output validation, error context) lives in
// src/pipeline/; this header only binds a MeasureOptions bundle to a
// one-shot call and keeps the historical bench:: names alive.
#pragma once

#include <cstdio>

#include "pipeline/pipeline.hpp"

namespace sofia::bench {

/// The vanilla-vs-SOFIA comparison record (see pipeline::Measurement).
using Measurement = pipeline::Measurement;

inline crypto::KeySet bench_keys() {
  // The paper's cipher for all measurements.
  return crypto::KeySet::example(crypto::CipherKind::kRectangle80);
}

struct MeasureOptions {
  /// Cipher + key material + block policy + CTR granularity — the single
  /// source of truth stamped onto both the toolchain and the device.
  pipeline::DeviceProfile profile;
  /// Simulator timing knobs; keys/policy are filled from the profile.
  sim::SimConfig config;
  assembler::MemoryLayout mem;
};

inline MeasureOptions default_measure_options() {
  // DeviceProfile::paper_default() is the hardware-faithful configuration
  // (paper §III): RECTANGLE-80, pair-granular CTR, 8-word blocks.
  return MeasureOptions{};
}

/// Run one workload both ways; throws on any functional mismatch with the
/// golden model (a benchmark must never report numbers for a broken run).
inline Measurement measure_workload(const workloads::WorkloadSpec& spec,
                                    std::uint64_t seed, std::uint32_t size,
                                    const MeasureOptions& opts =
                                        default_measure_options()) {
  auto p = pipeline::Pipeline::from_workload(spec, seed, size, opts.profile);
  p.set_sim_config(opts.config);
  p.set_memory_layout(opts.mem);
  return p.measure();
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Stream-targeted overload for tools whose tables move to stderr when the
/// JSON document streams on stdout (`--json -`).
inline void print_rule(std::FILE* out, int width) {
  for (int i = 0; i < width; ++i) std::putc('-', out);
  std::putc('\n', out);
}

}  // namespace sofia::bench
