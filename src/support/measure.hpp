// Shared measurement harness for the experiment-reproduction benches and the
// sofia_report tool: run a workload on the vanilla core and through the full
// SOFIA pipeline, and combine cycle counts with the hardware model's clock
// estimates into total-execution-time overheads (the paper's headline
// metric). Lives in src/ so tools never have to reach into bench/.
#pragma once

#include <cstdio>
#include <string>

#include "assembler/link.hpp"
#include "crypto/key_set.hpp"
#include "hw/hw_model.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"
#include "workloads/workloads.hpp"
#include "xform/transform.hpp"

namespace sofia::bench {

inline crypto::KeySet bench_keys() {
  // The paper's cipher for all measurements.
  return crypto::KeySet::example(crypto::CipherKind::kRectangle80);
}

struct Measurement {
  std::string name;
  std::uint32_t vanilla_text_bytes = 0;
  std::uint32_t sofia_text_bytes = 0;
  std::uint64_t vanilla_cycles = 0;
  std::uint64_t sofia_cycles = 0;
  sim::SimStats vanilla_stats;
  sim::SimStats sofia_stats;

  double size_ratio() const {
    return static_cast<double>(sofia_text_bytes) / vanilla_text_bytes;
  }
  double cycle_overhead_pct() const {
    return hw::overhead_pct(static_cast<double>(vanilla_cycles),
                            static_cast<double>(sofia_cycles));
  }
  /// Total execution-time overhead using the hardware model's clocks.
  double time_overhead_pct(const hw::HwModel& model, int unroll_cycles) const {
    const double tv = hw::execution_time_ms(vanilla_cycles,
                                            model.vanilla().clock_mhz);
    const double ts = hw::execution_time_ms(sofia_cycles,
                                            model.sofia(unroll_cycles).clock_mhz);
    return hw::overhead_pct(tv, ts);
  }
};

struct MeasureOptions {
  xform::Options transform;
  sim::SimConfig config;  ///< keys/policy filled in by measure()
  /// Cipher used for the SOFIA keys (the paper measures RECTANGLE-80).
  crypto::CipherKind cipher_kind = crypto::CipherKind::kRectangle80;
};

inline MeasureOptions default_measure_options() {
  MeasureOptions m;
  // The hardware-faithful configuration (paper §III): pair-granular CTR.
  m.transform.granularity = crypto::Granularity::kPerPair;
  return m;
}

/// Run one workload both ways; throws on any functional mismatch with the
/// golden model (a benchmark must never report numbers for a broken run).
inline Measurement measure_workload(const workloads::WorkloadSpec& spec,
                                    std::uint64_t seed, std::uint32_t size,
                                    MeasureOptions opts = default_measure_options()) {
  const std::string src = spec.source(seed, size);
  const std::string expected = spec.golden(seed, size);
  const auto prog = assembler::assemble(src);

  Measurement m;
  m.name = spec.name;

  const auto vimg = assembler::link_vanilla(prog, opts.transform.mem);
  sim::SimConfig vconfig = opts.config;
  const auto vres = sim::run_image(vimg, vconfig);
  if (!vres.ok() || vres.output != expected)
    throw Error("bench: vanilla run of " + spec.name + " failed");
  m.vanilla_text_bytes = vimg.text_bytes();
  m.vanilla_cycles = vres.stats.cycles;
  m.vanilla_stats = vres.stats;

  const auto keys = crypto::KeySet::example(opts.cipher_kind);
  const auto result = xform::transform(prog, keys, opts.transform);
  sim::SimConfig sconfig = opts.config;
  sconfig.keys = keys;
  sconfig.policy = opts.transform.policy;
  const auto sres = sim::run_image(result.image, sconfig);
  if (!sres.ok() || sres.output != expected)
    throw Error("bench: SOFIA run of " + spec.name + " failed (" +
                std::string(to_string(sres.status)) + ")");
  m.sofia_text_bytes = result.image.text_bytes();
  m.sofia_cycles = sres.stats.cycles;
  m.sofia_stats = sres.stats;
  return m;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace sofia::bench
