// Deterministic pseudo-random generator for tests, workload inputs and
// Monte-Carlo security experiments. xoshiro256** seeded via splitmix64:
// fast, reproducible across platforms, and independent of libstdc++'s
// unspecified distribution implementations.
#pragma once

#include <cstdint>

namespace sofia {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Next 32 uniformly random bits.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). Throws sofia::Error when bound == 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Throws sofia::Error when
  /// lo > hi (an empty range).
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Derive an independent substream (splitmix-style): the child is seeded
  /// from a hash of this generator's *current* state and `stream_id`, so
  /// fork(i) from a fresh parent is a pure function of (seed, i) — the
  /// campaign driver forks one stream per job index and gets byte-identical
  /// mutation schedules for any thread count or shard split. Forking does
  /// not advance the parent, and distinct stream ids give uncorrelated
  /// sequences.
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t state_[4];
};

}  // namespace sofia
