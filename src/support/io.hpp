// Whole-file I/O, hoisted from the per-tool slurp/spill copies so every
// reader opens files in binary mode (the pipeline used to read sources in
// text mode while the tools read JSON in binary) and every writer actually
// checks the stream after flushing — a disk-full or closed-pipe write must
// surface as an error, not a silently truncated document. All failures
// throw sofia::Error naming the path (and errno's story when it has one).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sofia::io {

/// Read a file's entire contents (binary mode).
std::string read_file(const std::string& path);

/// Read a file's entire contents as raw bytes (binary mode).
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// Create/truncate `path` and write `content` (binary mode), then flush and
/// verify the stream state before reporting success.
void write_file(const std::string& path, std::string_view content);

/// Byte-vector convenience over write_file.
void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// write_file with the CLI "-" convention: path "-" streams `content` to
/// stdout (flushed and checked — a closed pipe is an error), anything else
/// is a write_file. The document-emitting tools (sofia_sweep, sofia_fleet)
/// share this so their stdout contract cannot drift.
void emit_document(const std::string& path, std::string_view content);

}  // namespace sofia::io
