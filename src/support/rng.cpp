#include "support/rng.hpp"

#include "support/bits.hpp"
#include "support/error.hpp"

namespace sofia {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // A state of all zeros would be a fixed point; splitmix64 cannot produce
  // four zero outputs in a row, so no further check is needed.
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl64(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw Error("Rng::next_below: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi)
    throw Error("Rng::next_range: empty range [" + std::to_string(lo) + ", " +
                std::to_string(hi) + "]");
  // All width arithmetic in uint64: hi - lo overflows int64 for ranges
  // wider than INT64_MAX (unsigned wrap-around is well defined and gives
  // the true width mod 2^64).
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span wraps to 0 only for the full [INT64_MIN, INT64_MAX] range, where
  // any 64-bit draw is uniform.
  const std::uint64_t draw = span == 0 ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Two splitmix64 steps over (state, stream_id): the first decorrelates
  // the child from the parent's own output stream (which is a different
  // function of the same state words), the second folds the stream id in
  // so that adjacent ids land far apart in seed space.
  std::uint64_t x = state_[0] ^ rotl64(state_[2], 29);
  std::uint64_t seed = splitmix64(x);
  x ^= stream_id;
  seed ^= splitmix64(x);
  return Rng(seed);
}

}  // namespace sofia
