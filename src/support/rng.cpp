#include "support/rng.hpp"

#include "support/bits.hpp"

namespace sofia {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // A state of all zeros would be a fixed point; splitmix64 cannot produce
  // four zero outputs in a row, so no further check is needed.
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl64(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace sofia
