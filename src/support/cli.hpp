// Declarative command-line flag parser shared by the tools/ front-ends,
// replacing five hand-rolled argv loops that each had their own quirks
// (flags recognized only in argv[1], silent acceptance of typos, ...).
//
//   cli::Parser p("sofia_run", "execute a saved image on the simulated device");
//   p.option("--key-seed", seed, "n", "device KeySet seed");
//   p.flag("--stats", stats, "print the detailed statistics block");
//   p.positional("image.img", path);
//   p.parse_or_exit(argc, argv);
//
// Conventions (uniform across every tool): `--flag value` and
// `--flag=value` are both accepted; `--help`/`-h` prints the generated
// usage to stdout and exits 0; unknown flags, missing values and malformed
// numbers print a diagnostic plus the usage to stderr and exit 2.
//
// parse() is exit-free and returns a Result so test_cli can exercise every
// path in-process; parse_or_exit() is the one-liner the tools call.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace sofia::cli {

/// Strict unsigned parse (decimal or 0x hex; the whole token must be the
/// number). Shared by the parser's typed options and tools that need
/// presence-sensitive flags (e.g. --key-seed, where 0 is a valid seed).
bool parse_number(std::string_view text, std::uint64_t& out);

class Parser {
 public:
  /// `program` is the name used in diagnostics; `summary` is the one-line
  /// description printed at the top of the usage text.
  explicit Parser(std::string program, std::string summary = "");

  // ---- declarations (order defines the usage text) ------------------------

  /// Boolean switch: present -> true.
  Parser& flag(std::string name, bool& out, std::string help);

  /// Valued options. `value_name` is the usage placeholder, e.g. "n".
  Parser& option(std::string name, std::string& out, std::string value_name,
                 std::string help);
  Parser& option(std::string name, std::uint32_t& out, std::string value_name,
                 std::string help);
  Parser& option(std::string name, std::uint64_t& out, std::string value_name,
                 std::string help);

  /// Choice-typed option: the value must be one of `choices` (exact match).
  /// The generated usage lists the choices as the placeholder
  /// ("--backend <cycle|functional>"); any other value is a parse error
  /// (diagnostic names the accepted set, usage + exit 2 via parse_or_exit).
  Parser& choice(std::string name, std::string& out,
                 std::vector<std::string> choices, std::string help);

  /// Required positional argument.
  Parser& positional(std::string name, std::string& out);

  /// Optional positional argument.
  Parser& optional_positional(std::string name, std::string& out);

  /// Zero-or-more trailing positionals (declare last).
  Parser& positional_list(std::string name, std::vector<std::string>& out);

  // ---- parsing ------------------------------------------------------------

  struct Result {
    enum class Status { kOk, kHelp, kError };
    Status status = Status::kOk;
    std::string message;  ///< diagnostic when status == kError

    bool ok() const { return status == Status::kOk; }
  };

  /// Parse without printing or exiting.
  Result parse(int argc, const char* const* argv) const;

  /// Parse; on --help print usage to stdout and exit 0, on error print the
  /// diagnostic and usage to stderr and exit 2.
  void parse_or_exit(int argc, const char* const* argv) const;

  /// The generated usage text.
  std::string usage() const;

  /// Report a post-parse validation failure the same way parse errors are
  /// reported (diagnostic + usage to stderr); returns the conventional
  /// exit code 2 so callers can `return parser.fail(...)`.
  int fail(const std::string& message, std::FILE* err = stderr) const;

 private:
  enum class Kind { kBool, kString, kUint32, kUint64, kChoice };

  struct Flag {
    std::string name;
    Kind kind = Kind::kBool;
    void* out = nullptr;
    std::string value_name;
    std::string help;
    std::vector<std::string> choices;  ///< kChoice: the accepted values
    bool takes_value() const { return kind != Kind::kBool; }
  };

  struct Positional {
    std::string name;
    std::string* out = nullptr;
    bool required = false;
  };

  const Flag* find(std::string_view name) const;
  static Result error(std::string message);

  std::string program_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
  std::string list_name_;
  std::vector<std::string>* list_out_ = nullptr;
};

}  // namespace sofia::cli
