#include "support/io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "support/error.hpp"

namespace sofia::io {

namespace {

/// " : <strerror>" when errno carries a story, "" otherwise — ofstream does
/// not set errno on every failure path, so the suffix is best-effort.
std::string errno_suffix() {
  if (errno == 0) return {};
  return std::string(": ") + std::strerror(errno);
}

template <typename Container>
Container read_whole(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read '" + path + "'" + errno_suffix());
  Container content{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  if (in.bad()) throw Error("read error on '" + path + "'" + errno_suffix());
  return content;
}

}  // namespace

std::string read_file(const std::string& path) {
  return read_whole<std::string>(path);
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  return read_whole<std::vector<std::uint8_t>>(path);
}

void write_file(const std::string& path, std::string_view content) {
  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write '" + path + "'" + errno_suffix());
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  // A full disk or a closed pipe may only surface at flush time; good()
  // after an explicit flush is the earliest reliable verdict.
  out.flush();
  if (!out.good())
    throw Error("write to '" + path + "' failed" + errno_suffix());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return write_file(path, std::string_view{});
  write_file(path, std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                    bytes.size()));
}

void emit_document(const std::string& path, std::string_view content) {
  if (path != "-") return write_file(path, content);
  errno = 0;
  if (std::fwrite(content.data(), 1, content.size(), stdout) !=
          content.size() ||
      std::fflush(stdout) != 0)
    throw Error("cannot write the document to stdout" + errno_suffix());
}

}  // namespace sofia::io
