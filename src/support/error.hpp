// Common exception hierarchy. Toolchain-stage failures (assembler,
// transformer) are programming/input errors and throw; run-time *security*
// violations in the simulator are modelled as data (sim::ResetEvent), not
// exceptions, because a reset is an architecturally defined outcome.
#pragma once

#include <stdexcept>
#include <string>

namespace sofia {

/// Base class for all SOFIA toolchain errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Assembly-source errors; carries a 1-based source line number.
class AsmError : public Error {
 public:
  AsmError(int line, const std::string& what)
      : Error("asm:" + std::to_string(line) + ": " + what), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Errors raised while transforming a program into SOFIA block format.
class TransformError : public Error {
 public:
  using Error::Error;
};

}  // namespace sofia
