#include "support/version.hpp"

#ifndef SOFIA_VERSION_STRING
#define SOFIA_VERSION_STRING "0.0.0-unbuilt"
#endif

namespace sofia {

const char* version_string() { return SOFIA_VERSION_STRING; }

}  // namespace sofia
