// Bit-manipulation helpers shared across the SOFIA libraries.
#pragma once

#include <cstdint>

namespace sofia {

/// Rotate a 16-bit word left by n (0 <= n < 16).
constexpr std::uint16_t rotl16(std::uint16_t x, unsigned n) {
  n &= 15u;
  if (n == 0) return x;
  return static_cast<std::uint16_t>((x << n) | (x >> (16u - n)));
}

/// Rotate a 16-bit word right by n (0 <= n < 16).
constexpr std::uint16_t rotr16(std::uint16_t x, unsigned n) {
  return rotl16(x, 16u - (n & 15u));
}

/// Rotate a 32-bit word left by n.
constexpr std::uint32_t rotl32(std::uint32_t x, unsigned n) {
  n &= 31u;
  if (n == 0) return x;
  return (x << n) | (x >> (32u - n));
}

/// Rotate a 32-bit word right by n.
constexpr std::uint32_t rotr32(std::uint32_t x, unsigned n) {
  return rotl32(x, 32u - (n & 31u));
}

/// Rotate a 64-bit word left by n.
constexpr std::uint64_t rotl64(std::uint64_t x, unsigned n) {
  n &= 63u;
  if (n == 0) return x;
  return (x << n) | (x >> (64u - n));
}

/// Extract bits [lo, lo+width) of x (width <= 32).
constexpr std::uint32_t bits(std::uint32_t x, unsigned lo, unsigned width) {
  return (x >> lo) & ((width >= 32u) ? 0xFFFFFFFFu : ((1u << width) - 1u));
}

/// Insert `value` into bits [lo, lo+width) of x, returning the new word.
constexpr std::uint32_t insert_bits(std::uint32_t x, unsigned lo, unsigned width,
                                    std::uint32_t value) {
  const std::uint32_t mask =
      ((width >= 32u) ? 0xFFFFFFFFu : ((1u << width) - 1u)) << lo;
  return (x & ~mask) | ((value << lo) & mask);
}

/// Sign-extend the low `width` bits of x to a signed 32-bit integer.
constexpr std::int32_t sign_extend(std::uint32_t x, unsigned width) {
  const std::uint32_t m = 1u << (width - 1);
  x &= (width >= 32u) ? 0xFFFFFFFFu : ((1u << width) - 1u);
  return static_cast<std::int32_t>((x ^ m) - m);
}

/// True when `value` fits in a `width`-bit two's-complement field.
constexpr bool fits_signed(std::int64_t value, unsigned width) {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True when `value` fits in a `width`-bit unsigned field.
constexpr bool fits_unsigned(std::uint64_t value, unsigned width) {
  return width >= 64u || value < (std::uint64_t{1} << width);
}

}  // namespace sofia
