// Hex formatting helpers used by the disassembler, image dumpers and tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace sofia {

/// "deadbeef" (8 digits, lower case).
std::string hex32(std::uint32_t v);

/// "00000000deadbeef" (16 digits, lower case).
std::string hex64(std::uint64_t v);

/// "0xdeadbeef".
std::string hex32_0x(std::uint32_t v);

/// Classic offset + words hex dump of 32-bit words, 4 words per line.
std::string hexdump_words(std::span<const std::uint32_t> words,
                          std::uint32_t base_addr = 0);

}  // namespace sofia
