#include "support/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace sofia::cli {

bool parse_number(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  // strtoull skips leading whitespace and accepts signs, so a bare sign
  // check lets " -5" through and wraps it to 18446744073709551611. Insist
  // the very first character is a digit: that rejects whitespace, embedded
  // signs and " 0x10" in one rule while keeping "0x10" (leading '0') legal.
  if (text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const std::string s(text);
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

namespace {

/// The whole token must be a number (the hand-rolled loops used strtoul
/// and silently read "12abc" as 12) and must fit the target type.
bool parse_uint(std::string_view token, std::uint64_t max, std::uint64_t& out) {
  std::uint64_t v = 0;
  if (!parse_number(token, v) || v > max) return false;
  out = v;
  return true;
}

}  // namespace

Parser::Parser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

Parser& Parser::flag(std::string name, bool& out, std::string help) {
  flags_.push_back({std::move(name), Kind::kBool, &out, "", std::move(help), {}});
  return *this;
}

Parser& Parser::option(std::string name, std::string& out,
                       std::string value_name, std::string help) {
  flags_.push_back({std::move(name), Kind::kString, &out,
                    std::move(value_name), std::move(help), {}});
  return *this;
}

Parser& Parser::option(std::string name, std::uint32_t& out,
                       std::string value_name, std::string help) {
  flags_.push_back({std::move(name), Kind::kUint32, &out,
                    std::move(value_name), std::move(help), {}});
  return *this;
}

Parser& Parser::option(std::string name, std::uint64_t& out,
                       std::string value_name, std::string help) {
  flags_.push_back({std::move(name), Kind::kUint64, &out,
                    std::move(value_name), std::move(help), {}});
  return *this;
}

Parser& Parser::choice(std::string name, std::string& out,
                       std::vector<std::string> choices, std::string help) {
  // The usage placeholder is the choice list itself ("<cycle|functional>"),
  // so --help always names the accepted set.
  std::string placeholder;
  for (const auto& c : choices) {
    if (!placeholder.empty()) placeholder += '|';
    placeholder += c;
  }
  Flag f{std::move(name), Kind::kChoice, &out, std::move(placeholder),
         std::move(help), std::move(choices)};
  flags_.push_back(std::move(f));
  return *this;
}

Parser& Parser::positional(std::string name, std::string& out) {
  positionals_.push_back({std::move(name), &out, true});
  return *this;
}

Parser& Parser::optional_positional(std::string name, std::string& out) {
  positionals_.push_back({std::move(name), &out, false});
  return *this;
}

Parser& Parser::positional_list(std::string name,
                                std::vector<std::string>& out) {
  list_name_ = std::move(name);
  list_out_ = &out;
  return *this;
}

const Parser::Flag* Parser::find(std::string_view name) const {
  for (const auto& f : flags_)
    if (f.name == name) return &f;
  return nullptr;
}

Parser::Result Parser::error(std::string message) {
  Result r;
  r.status = Result::Status::kError;
  r.message = std::move(message);
  return r;
}

Parser::Result Parser::parse(int argc, const char* const* argv) const {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Result r;
      r.status = Result::Status::kHelp;
      return r;
    }
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      // --name or --name=value
      std::string_view name = arg;
      std::string_view inline_value;
      bool have_inline = false;
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        name = arg.substr(0, eq);
        inline_value = arg.substr(eq + 1);
        have_inline = true;
      }
      const Flag* f = find(name);
      if (f == nullptr)
        return error("unknown option '" + std::string(name) + "'");
      if (!f->takes_value()) {
        if (have_inline)
          return error("option '" + f->name + "' does not take a value");
        *static_cast<bool*>(f->out) = true;
        continue;
      }
      std::string_view value;
      if (have_inline) {
        value = inline_value;
      } else {
        if (i + 1 >= argc) return error("option '" + f->name + "' needs a value");
        value = argv[++i];
      }
      switch (f->kind) {
        case Kind::kString:
          *static_cast<std::string*>(f->out) = std::string(value);
          break;
        case Kind::kChoice: {
          bool accepted = false;
          for (const auto& c : f->choices) accepted = accepted || c == value;
          if (!accepted) {
            std::string allowed;
            for (const auto& c : f->choices) {
              if (!allowed.empty()) allowed += ", ";
              allowed += c;
            }
            return error("option '" + f->name + "': invalid value '" +
                         std::string(value) + "' (choose from " + allowed +
                         ")");
          }
          *static_cast<std::string*>(f->out) = std::string(value);
          break;
        }
        case Kind::kUint32: {
          std::uint64_t v = 0;
          if (!parse_uint(value, std::numeric_limits<std::uint32_t>::max(), v))
            return error("option '" + f->name + "': invalid number '" +
                         std::string(value) + "'");
          *static_cast<std::uint32_t*>(f->out) =
              static_cast<std::uint32_t>(v);
          break;
        }
        case Kind::kUint64: {
          std::uint64_t v = 0;
          if (!parse_uint(value, std::numeric_limits<std::uint64_t>::max(), v))
            return error("option '" + f->name + "': invalid number '" +
                         std::string(value) + "'");
          *static_cast<std::uint64_t*>(f->out) = v;
          break;
        }
        case Kind::kBool:
          break;  // unreachable: takes_value() excluded it
      }
      continue;
    }
    if (arg.size() >= 1 && arg[0] == '-' && arg.size() > 1)
      return error("unknown option '" + std::string(arg) + "'");
    // Positional.
    if (next_positional < positionals_.size()) {
      *positionals_[next_positional++].out = std::string(arg);
    } else if (list_out_ != nullptr) {
      list_out_->push_back(std::string(arg));
    } else {
      return error("unexpected argument '" + std::string(arg) + "'");
    }
  }
  for (std::size_t p = next_positional; p < positionals_.size(); ++p)
    if (positionals_[p].required)
      return error("missing required argument <" + positionals_[p].name + ">");
  return {};
}

std::string Parser::usage() const {
  std::string out = "usage: " + program_ + " [options]";
  for (const auto& p : positionals_)
    out += p.required ? (" " + p.name) : (" [" + p.name + "]");
  if (list_out_ != nullptr) out += " [" + list_name_ + "...]";
  out += '\n';
  if (!summary_.empty()) out += "  " + summary_ + "\n";
  for (const auto& f : flags_) {
    std::string left = "  " + f.name;
    if (f.takes_value()) left += " <" + f.value_name + ">";
    if (left.size() < 26) left.resize(26, ' ');
    out += left + " " + f.help + "\n";
  }
  std::string help_row = "  --help, -h";
  help_row.resize(26, ' ');
  out += help_row + " show this help and exit\n";
  return out;
}

int Parser::fail(const std::string& message, std::FILE* err) const {
  std::fprintf(err, "%s: %s\n%s", program_.c_str(), message.c_str(),
               usage().c_str());
  return 2;
}

void Parser::parse_or_exit(int argc, const char* const* argv) const {
  const Result r = parse(argc, argv);
  switch (r.status) {
    case Result::Status::kOk:
      return;
    case Result::Status::kHelp:
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    case Result::Status::kError:
      std::exit(fail(r.message));
  }
}

}  // namespace sofia::cli
