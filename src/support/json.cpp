#include "support/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace sofia::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::newline_indent() {
  if (indent_ < 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void Writer::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (stack_.back().has_items) out_ += ',';
  newline_indent();
  stack_.back().has_items = true;
}

Writer& Writer::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back({false, false});
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back({true, false});
  return *this;
}

Writer& Writer::end_object() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ += '}';
  return *this;
}

Writer& Writer::end_array() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view name) {
  if (stack_.back().has_items) out_ += ',';
  newline_indent();
  stack_.back().has_items = true;
  out_ += '"';
  out_ += escape(name);
  out_ += indent_ < 0 ? "\":" : "\": ";
  pending_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

Writer& Writer::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

Writer& Writer::value(std::int64_t n) {
  before_value();
  out_ += std::to_string(n);
  return *this;
}

Writer& Writer::value(std::uint64_t n) {
  before_value();
  out_ += std::to_string(n);
  return *this;
}

Writer& Writer::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", d);
  out_ += buf;
  return *this;
}

Writer& Writer::null() {
  before_value();
  out_ += "null";
  return *this;
}

Writer& Writer::raw_number(std::string_view token) {
  before_value();
  out_ += token;
  return *this;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writer only emits \u00xx for control bytes; decode the
          // BMP point as UTF-8 for generality.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value value() {
    skip_ws();
    const char c = peek();
    Value v;
    if (c == '{') {
      ++pos_;
      v.kind = Value::Kind::kObject;
      skip_ws();
      if (peek() == '}') { ++pos_; return v; }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), value());
        skip_ws();
        if (peek() == ',') { ++pos_; continue; }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = Value::Kind::kArray;
      skip_ws();
      if (peek() == ']') { ++pos_; return v; }
      for (;;) {
        v.array.push_back(value());
        skip_ws();
        if (peek() == ',') { ++pos_; continue; }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = Value::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = Value::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number: keep the verbatim token.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char d = text_[pos_];
      if ((d >= '0' && d <= '9') || d == '.' || d == 'e' || d == 'E' ||
          d == '+' || d == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("unexpected character");
    v.kind = Value::Kind::kNumber;
    v.number = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const std::string& Value::as_string(std::string_view context) const {
  if (kind != Kind::kString)
    throw Error("json: " + std::string(context) + " is not a string");
  return string;
}

std::uint64_t Value::as_uint(std::string_view context) const {
  if (kind != Kind::kNumber)
    throw Error("json: " + std::string(context) + " is not a number");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(number.c_str(), &end, 10);
  if (errno != 0 || end != number.c_str() + number.size())
    throw Error("json: " + std::string(context) + " is not an unsigned integer");
  return v;
}

const std::vector<Value>& Value::as_array(std::string_view context) const {
  if (kind != Kind::kArray)
    throw Error("json: " + std::string(context) + " is not an array");
  return array;
}

void Value::write(Writer& w) const {
  switch (kind) {
    case Kind::kNull: w.null(); break;
    case Kind::kBool: w.value(boolean); break;
    case Kind::kNumber: w.raw_number(number); break;
    case Kind::kString: w.value(string); break;
    case Kind::kArray:
      w.begin_array();
      for (const auto& v : array) v.write(w);
      w.end_array();
      break;
    case Kind::kObject:
      w.begin_object();
      for (const auto& [k, v] : object) {
        w.key(k);
        v.write(w);
      }
      w.end_object();
      break;
  }
}

Value parse(std::string_view text) { return ParserImpl(text).document(); }

}  // namespace sofia::json
