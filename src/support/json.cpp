#include "support/json.hpp"

#include <cmath>
#include <cstdio>

namespace sofia::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::newline_indent() {
  if (indent_ < 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void Writer::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (stack_.back().has_items) out_ += ',';
  newline_indent();
  stack_.back().has_items = true;
}

Writer& Writer::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back({false, false});
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back({true, false});
  return *this;
}

Writer& Writer::end_object() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ += '}';
  return *this;
}

Writer& Writer::end_array() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view name) {
  if (stack_.back().has_items) out_ += ',';
  newline_indent();
  stack_.back().has_items = true;
  out_ += '"';
  out_ += escape(name);
  out_ += indent_ < 0 ? "\":" : "\": ";
  pending_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

Writer& Writer::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

Writer& Writer::value(std::int64_t n) {
  before_value();
  out_ += std::to_string(n);
  return *this;
}

Writer& Writer::value(std::uint64_t n) {
  before_value();
  out_ += std::to_string(n);
  return *this;
}

Writer& Writer::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", d);
  out_ += buf;
  return *this;
}

Writer& Writer::null() {
  before_value();
  out_ += "null";
  return *this;
}

}  // namespace sofia::json
