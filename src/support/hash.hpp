// Dependency-free SHA-256 (FIPS 180-4) for content addressing — the result
// cache keys every entry by a digest of its job's inputs (device-profile
// fingerprint, hardened image bytes, canonical SimConfig bytes, seed), so
// the hash must be collision-resistant, stable across platforms and
// available without linking any external crypto library. The streaming
// Hasher API processes image-sized inputs without buffering them twice;
// test_support pins the implementation against the NIST test vectors.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sofia::support {

/// A finished SHA-256 digest (32 bytes).
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Lowercase-hex rendering of a digest (64 characters).
std::string to_hex(const Sha256Digest& digest);

/// Streaming SHA-256: update() any number of times, then digest() once.
/// Further update() calls after digest() throw sofia::Error (the padded
/// final block must not be extended silently).
class Sha256 {
 public:
  Sha256();

  Sha256& update(const void* data, std::size_t size);
  Sha256& update(std::string_view text) {
    return update(text.data(), text.size());
  }
  Sha256& update(const std::vector<std::uint8_t>& bytes) {
    return update(bytes.data(), bytes.size());
  }

  /// Pad, finish and return the digest; the hasher is consumed.
  Sha256Digest digest();

 private:
  void compress(const std::uint8_t* block);
  void absorb(const std::uint8_t* p, std::size_t size);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// One-shot conveniences.
Sha256Digest sha256(const void* data, std::size_t size);
Sha256Digest sha256(std::string_view text);
Sha256Digest sha256(const std::vector<std::uint8_t>& bytes);

/// One-shot digest, rendered as lowercase hex.
std::string sha256_hex(std::string_view text);

}  // namespace sofia::support
