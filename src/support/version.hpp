// Build identity for the reproduction: the project version is injected by
// CMake (src/support/CMakeLists.txt) so binaries and tests can report which
// tree they were built from.
#pragma once

namespace sofia {

/// Semantic version of the sofia tree, e.g. "0.1.0". Never null; reads
/// "0.0.0-unbuilt" when compiled outside the CMake build.
const char* version_string();

}  // namespace sofia
