// Minimal streaming JSON writer for machine-readable experiment results
// (driver/sweep emits BENCH_sweep.json-style documents with it). Emission
// is fully deterministic — keys appear in call order and numbers are
// formatted by fixed rules — so two runs of the same experiment produce
// byte-identical documents regardless of thread interleaving. Writing only:
// the repo never parses JSON, so no reader lives here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sofia::json {

/// Escape a string for use inside JSON quotes (no surrounding quotes).
std::string escape(std::string_view s);

class Writer {
 public:
  /// indent < 0 emits a compact single-line document; indent >= 0 pretty-
  /// prints with that many spaces per nesting level.
  explicit Writer(int indent = 2) : indent_(indent) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Start an object member; must be followed by a value or begin_*.
  Writer& key(std::string_view name);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(bool b);
  Writer& value(std::int64_t n);
  Writer& value(std::uint64_t n);
  Writer& value(std::uint32_t n) { return value(static_cast<std::uint64_t>(n)); }
  Writer& value(int n) { return value(static_cast<std::int64_t>(n)); }
  /// Doubles use %.10g: enough digits for the repo's ratios/percentages and
  /// deterministic for identical inputs. Non-finite values become null.
  Writer& value(double d);
  Writer& null();

  /// key(name) + value(v) in one call.
  template <typename T>
  Writer& member(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// The document so far. Call after the outermost end_* for a full document.
  const std::string& str() const { return out_; }

 private:
  void before_value();
  void newline_indent();

  struct Scope {
    bool array = false;
    bool has_items = false;
  };
  std::string out_;
  std::vector<Scope> stack_;
  int indent_;
  bool pending_key_ = false;
};

}  // namespace sofia::json
