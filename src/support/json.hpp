// Minimal streaming JSON writer for machine-readable experiment results
// (driver/sweep emits BENCH_sweep.json-style documents with it). Emission
// is fully deterministic — keys appear in call order and numbers are
// formatted by fixed rules — so two runs of the same experiment produce
// byte-identical documents regardless of thread interleaving.
//
// A small reader (parse/Value) exists for exactly one consumer: the
// sharded-sweep merge (sofia_sweep --merge), which must re-emit documents
// this repo wrote *byte-identically*. The Value tree therefore preserves
// object member order and the verbatim source text of numbers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sofia::json {

/// Escape a string for use inside JSON quotes (no surrounding quotes).
std::string escape(std::string_view s);

class Writer {
 public:
  /// indent < 0 emits a compact single-line document; indent >= 0 pretty-
  /// prints with that many spaces per nesting level.
  explicit Writer(int indent = 2) : indent_(indent) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Start an object member; must be followed by a value or begin_*.
  Writer& key(std::string_view name);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(bool b);
  Writer& value(std::int64_t n);
  Writer& value(std::uint64_t n);
  Writer& value(std::uint32_t n) { return value(static_cast<std::uint64_t>(n)); }
  Writer& value(int n) { return value(static_cast<std::int64_t>(n)); }
  /// Doubles use %.10g: enough digits for the repo's ratios/percentages and
  /// deterministic for identical inputs. Non-finite values become null.
  Writer& value(double d);
  Writer& null();

  /// key(name) + value(v) in one call.
  template <typename T>
  Writer& member(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// The document so far. Call after the outermost end_* for a full document.
  const std::string& str() const { return out_; }

 private:
  void before_value();
  void newline_indent();

  struct Scope {
    bool array = false;
    bool has_items = false;
  };
  std::string out_;
  std::vector<Scope> stack_;
  int indent_;
  bool pending_key_ = false;

  friend struct Value;  ///< Value::write() emits number tokens verbatim
  Writer& raw_number(std::string_view token);
};

/// Parsed JSON value. Object member order and the exact source text of
/// numbers are preserved so write() round-trips byte-identically for
/// documents produced by Writer.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string number;  ///< verbatim source token, e.g. "185.6" or "-7"
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< in source order

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  // Typed accessors; throw sofia::Error naming `context` on kind mismatch.
  const std::string& as_string(std::string_view context) const;
  std::uint64_t as_uint(std::string_view context) const;
  const std::vector<Value>& as_array(std::string_view context) const;

  /// Re-emit through a Writer (numbers verbatim, strings re-escaped).
  void write(Writer& w) const;
};

/// Parse a complete JSON document; throws sofia::Error (with byte offset)
/// on malformed input or trailing garbage.
Value parse(std::string_view text);

}  // namespace sofia::json
