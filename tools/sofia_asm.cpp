// sofia-asm: assemble an SR32 source file and produce a loadable image —
// either a plain sequential binary (--vanilla) or a SOFIA-hardened one
// (default), i.e. the paper's §III installation flow as a command-line
// tool. A thin shell over pipeline::Pipeline: the DeviceProfile built from
// the flags is the only place cipher/keys/policy are decided.
#include <cstdio>
#include <string>

#include "assembler/image_io.hpp"
#include "pipeline/pipeline.hpp"
#include "scheme/scheme.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  bool vanilla = false;
  bool per_word = false;
  bool quiet = false;
  std::string key_seed;
  std::string cipher = "rectangle80";
  std::string scheme(scheme::kDefaultScheme);
  std::uint32_t block_words = 0;  // 0 = policy default
  std::uint32_t store_min = ~0u;  // ~0 = policy default
  std::string input;
  std::string output;

  cli::Parser parser("sofia_asm",
                     "assemble an SR32 source file into a loadable image");
  parser.flag("--vanilla", vanilla, "skip the SOFIA transform (baseline binary)")
      .choice("--cipher", cipher, {"rectangle80", "speck64"}, "device cipher")
      .choice("--scheme", scheme, scheme::scheme_names(),
              "protection scheme sealing each block (the device must run "
              "the same one)")
      .option("--key-seed", key_seed, "n",
              "derive the device KeySet from a seed (default: example keys)")
      .flag("--per-word", per_word, "Alg. 1 per-word CTR (default: per-pair)")
      .option("--block-words", block_words, "n", "block size in words (default 8)")
      .option("--store-min", store_min, "n",
              "first word index where stores may sit (default 4)")
      .flag("--quiet", quiet, "suppress the transform report")
      .positional("input.s", input)
      .positional("output.img", output);
  parser.parse_or_exit(argc, argv);

  try {
    auto profile = pipeline::DeviceProfile::parse(cipher);
    if (!key_seed.empty()) {
      std::uint64_t seed = 0;
      if (!cli::parse_number(key_seed, seed))
        return parser.fail("--key-seed: invalid number '" + key_seed + "'");
      profile = pipeline::DeviceProfile::from_seed(profile.cipher, seed);
    }
    profile.scheme = scheme;  // already validated by the choice flag
    profile.granularity = per_word ? crypto::Granularity::kPerWord
                                   : crypto::Granularity::kPerPair;
    if (block_words != 0) profile.policy.words_per_block = block_words;
    if (store_min != ~0u) profile.policy.store_min_word = store_min;

    auto session = pipeline::Pipeline::from_source_file(input, profile);

    if (vanilla) {
      const auto& image = session.vanilla_image();
      assembler::save_image(image, output);
      if (!quiet)
        std::printf("vanilla image: %zu instructions, %u B text, entry 0x%x\n",
                    session.program().text.size(), image.text_bytes(),
                    image.entry);
      return 0;
    }

    const auto& result = session.hardened();
    assembler::save_image(result.image, output);
    if (!quiet) {
      std::printf("SOFIA image: %s\n", profile.policy.describe().c_str());
      std::printf("  %u B -> %u B (%.2fx); %u exec, %u mux, %u forwarding, "
                  "%u thunk blocks; %u padding NOPs; omega 0x%04x\n",
                  result.stats.text_bytes_in, result.stats.text_bytes_out,
                  result.stats.expansion(), result.stats.layout.exec_blocks,
                  result.stats.layout.mux_blocks,
                  result.stats.layout.forward_blocks,
                  result.stats.layout.thunk_blocks, result.stats.layout.pad_nops,
                  profile.keys().omega);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_asm: %s\n", e.what());
    return 1;
  }
}
