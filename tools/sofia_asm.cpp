// sofia-asm: assemble an SR32 source file and produce a loadable image —
// either a plain sequential binary (--vanilla) or a SOFIA-hardened one
// (default), i.e. the paper's §III installation flow as a command-line tool.
//
//   sofia_asm [options] input.s output.img
//     --vanilla            skip the SOFIA transform (baseline binary)
//     --key-seed <n>       derive the device KeySet from a seed
//                          (default: the documented example key set)
//     --per-word           Alg. 1 per-word CTR (default: per-pair)
//     --block-words <n>    block size in words (default 8)
//     --store-min <n>      first word index where stores may sit (default 4)
//     --quiet              suppress the transform report
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "assembler/image_io.hpp"
#include "assembler/link.hpp"
#include "assembler/program.hpp"
#include "crypto/key_set.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "xform/transform.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sofia_asm [--vanilla] [--key-seed n] [--per-word]\n"
               "                 [--block-words n] [--store-min n] [--quiet]\n"
               "                 input.s output.img\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  bool vanilla = false;
  bool per_word = false;
  bool quiet = false;
  std::uint64_t key_seed = 0;
  bool have_seed = false;
  xform::Options options;
  std::string input;
  std::string output;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--vanilla") vanilla = true;
    else if (arg == "--per-word") per_word = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--key-seed") { key_seed = std::strtoull(next_value(), nullptr, 0); have_seed = true; }
    else if (arg == "--block-words")
      options.policy.words_per_block =
          static_cast<std::uint32_t>(std::strtoul(next_value(), nullptr, 0));
    else if (arg == "--store-min")
      options.policy.store_min_word =
          static_cast<std::uint32_t>(std::strtoul(next_value(), nullptr, 0));
    else if (!arg.empty() && arg[0] == '-') usage();
    else if (input.empty()) input = arg;
    else if (output.empty()) output = arg;
    else usage();
  }
  if (input.empty() || output.empty()) usage();

  try {
    std::ifstream in(input);
    if (!in) throw Error("cannot open '" + input + "'");
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto program = assembler::assemble(buffer.str());

    if (vanilla) {
      const auto image = assembler::link_vanilla(program);
      assembler::save_image(image, output);
      if (!quiet)
        std::printf("vanilla image: %zu instructions, %u B text, entry 0x%x\n",
                    program.text.size(), image.text_bytes(), image.entry);
      return 0;
    }

    crypto::KeySet keys;
    if (have_seed) {
      Rng rng(key_seed);
      keys = crypto::KeySet::random(crypto::CipherKind::kRectangle80, rng);
    } else {
      keys = crypto::KeySet::example(crypto::CipherKind::kRectangle80);
    }
    options.granularity = per_word ? crypto::Granularity::kPerWord
                                   : crypto::Granularity::kPerPair;
    const auto result = xform::transform(program, keys, options);
    assembler::save_image(result.image, output);
    if (!quiet) {
      std::printf("SOFIA image: %s\n", options.policy.describe().c_str());
      std::printf("  %u B -> %u B (%.2fx); %u exec, %u mux, %u forwarding, "
                  "%u thunk blocks; %u padding NOPs; omega 0x%04x\n",
                  result.stats.text_bytes_in, result.stats.text_bytes_out,
                  result.stats.expansion(), result.stats.layout.exec_blocks,
                  result.stats.layout.mux_blocks,
                  result.stats.layout.forward_blocks,
                  result.stats.layout.thunk_blocks, result.stats.layout.pad_nops,
                  keys.omega);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_asm: %s\n", e.what());
    return 1;
  }
}
