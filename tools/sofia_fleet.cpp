// sofia-fleet: multi-worker sweep coordinator. Expands the same job matrix
// as sofia_sweep, launches N workers, hands worker K the `--shard K/N`
// slice, collects each shard's JSON document from the worker's stdout and
// merges them through driver::merge_json — producing a document
// byte-identical to a single-machine `sofia_sweep` run.
//
// Workers are shell commands (default: the sofia_sweep binary next to this
// one), so the fan-out transport is pluggable without code changes:
//   sofia_fleet --workers 4                          # local subprocesses
//   sofia_fleet --workers 2 --launch 'ssh host /opt/sofia/sofia_sweep'
//   sofia_fleet --workers 2 --launch 'docker run -i --rm sofia sofia_sweep'
// Every worker writes its shard to stdout (`--json -`), so no shared
// filesystem is needed.
#include <sys/wait.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "driver/sweep.hpp"
#include "scheme/scheme.hpp"
#include "sim/backend.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io.hpp"

namespace {

/// Single-quote a string for sh -c (the default sibling path may live
/// under a directory with spaces; a user-supplied --launch stays raw shell
/// on purpose).
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s)
    out += (c == '\'') ? std::string("'\\''") : std::string(1, c);
  out += '\'';
  return out;
}

/// The sofia_sweep binary expected next to this coordinator (the default
/// --launch command); bare "sofia_sweep" = PATH lookup when argv[0] has no
/// directory part.
std::string sibling_sweep(const char* argv0) {
  const std::string self(argv0 != nullptr ? argv0 : "");
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return "sofia_sweep";
  return shell_quote(self.substr(0, slash + 1) + "sofia_sweep");
}

struct ShardRun {
  std::string command;
  std::FILE* pipe = nullptr;
  std::string document;
  int exit_code = -1;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  std::string matrix_name = "suite-overhead";
  std::string backend(sim::kDefaultBackend);
  std::string scheme;  // empty = keep each cell's own scheme axis
  std::string launch;
  std::string json_path = "-";
  std::string cache_dir;
  std::uint32_t workers = 2;
  std::uint32_t threads = 0;
  bool smoke = false;
  bool quiet = false;

  cli::Parser parser("sofia_fleet",
                     "fan a sweep matrix out over N shard workers and merge "
                     "the results");
  parser
      .option("--matrix", matrix_name, "NAME",
              "matrix to run (default: suite-overhead; sofia_sweep --list)")
      .choice("--backend", backend, sim::backend_names(),
              "execution backend every worker runs its jobs on")
      .choice("--scheme", scheme, scheme::scheme_names(),
              "force a protection scheme onto every job (default: keep "
              "each matrix cell's own)")
      .option("--workers", workers, "N",
              "shard workers to launch (default: 2)")
      .option("--threads", threads, "N",
              "threads per worker (default: hardware concurrency / workers)")
      .option("--launch", launch, "CMD",
              "worker launch command; sofia_sweep shard flags are appended "
              "(default: the sofia_sweep next to this binary)")
      .option("--json", json_path, "PATH",
              "write the merged document to PATH (default '-' = stdout)")
      .option("--cache", cache_dir, "DIR",
              "shared content-addressed result cache every worker reuses "
              "and fills — an interrupted fleet run resumes from it "
              "(default: $SOFIA_CACHE when set)")
      .flag("--smoke", smoke, "shrink the matrix to a seconds-long smoke run")
      .flag("--quiet", quiet, "suppress the coordinator's progress lines");
  parser.parse_or_exit(argc, argv);

  if (workers < 1) return parser.fail("--workers must be >= 1");
  if (threads == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    threads = std::max(1u, hw / workers);
  }
  if (launch.empty()) launch = sibling_sweep(argv[0]);

  std::FILE* log = (json_path == "-") ? stderr : stdout;

  try {
    // Expand locally first: an unknown matrix fails here, before any worker
    // is launched, and the job count makes the progress line honest.
    driver::SweepSpec spec = driver::matrix(matrix_name);
    if (smoke) spec = driver::smoke(std::move(spec));
    spec = driver::with_backend(std::move(spec), backend);
    if (!scheme.empty()) spec = driver::with_scheme(std::move(spec), scheme);
    const std::size_t total_jobs = driver::expand_jobs(spec).size();
    if (!quiet)
      std::fprintf(log,
                   "fleet %-20s %zu jobs over %u worker(s) x %u thread(s)\n",
                   spec.name.c_str(), total_jobs, workers, threads);

    // Launch every shard first (they all run concurrently), then drain
    // their stdouts in order. A later worker blocked on a full pipe simply
    // waits for its turn to be drained; nothing deadlocks.
    std::vector<ShardRun> shards(workers);
    for (std::uint32_t k = 0; k < workers; ++k) {
      auto& shard = shards[k];
      shard.command = launch + " --matrix " + matrix_name +
                      " --backend " + backend +
                      (scheme.empty() ? "" : " --scheme " + scheme) +
                      (smoke ? " --smoke" : "") +
                      (cache_dir.empty() ? ""
                                         : " --cache " + shell_quote(cache_dir)) +
                      " --threads " + std::to_string(threads) + " --shard " +
                      std::to_string(k) + "/" + std::to_string(workers) +
                      " --quiet --json -";
      if (!quiet)
        std::fprintf(log, "  [shard %u/%u] %s\n", k, workers,
                     shard.command.c_str());
      shard.pipe = popen(shard.command.c_str(), "r");
      if (shard.pipe == nullptr)
        throw Error("cannot launch worker " + std::to_string(k) + ": '" +
                    shard.command + "'");
    }

    bool all_ok = true;
    for (std::uint32_t k = 0; k < workers; ++k) {
      auto& shard = shards[k];
      std::array<char, 4096> buffer;
      std::size_t n = 0;
      while ((n = std::fread(buffer.data(), 1, buffer.size(), shard.pipe)) > 0)
        shard.document.append(buffer.data(), n);
      const int status = pclose(shard.pipe);
      shard.pipe = nullptr;
      shard.exit_code =
          WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
      if (shard.exit_code != 0 || shard.document.empty()) {
        all_ok = false;
        std::fprintf(stderr,
                     "sofia_fleet: worker %u/%u failed (exit %d%s): '%s'\n", k,
                     workers, shard.exit_code,
                     shard.document.empty() ? ", empty document" : "",
                     shard.command.c_str());
      } else if (!quiet) {
        std::fprintf(log, "  [shard %u/%u] ok (%zu bytes)\n", k, workers,
                     shard.document.size());
      }
    }
    if (!all_ok) return 1;

    std::vector<std::string> documents;
    documents.reserve(shards.size());
    for (auto& shard : shards) documents.push_back(std::move(shard.document));
    io::emit_document(json_path, driver::merge_json(documents));
    if (!quiet)
      std::fprintf(log, "merged %u shard(s) into %s (%zu jobs)\n", workers,
                   json_path.c_str(), total_jobs);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_fleet: %s\n", e.what());
    return 1;
  }
}
