// sofia-run: execute a saved image on the simulated device (vanilla core
// for plain images, SOFIA core for hardened ones). The device is described
// by the same DeviceProfile flags sofia_asm takes; a cipher or key mismatch
// is an architectural reset on the first fetched block, exactly as on the
// real device — never a crash.
#include <cstdio>
#include <string>

#include "pipeline/pipeline.hpp"
#include "scheme/scheme.hpp"
#include "sim/backend.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  std::string key_seed;
  std::string cipher = "rectangle80";
  std::string scheme(scheme::kDefaultScheme);
  std::string backend(sim::kDefaultBackend);
  std::string worker;
  std::string worker_backend;  // empty = $SOFIA_WORKER_BACKEND, then cycle
  bool stats = false;
  std::uint64_t max_cycles = 0;
  std::string path;

  // A remote worker's far side must be a local backend ("remote" recurses).
  auto local_backends = sim::backend_names();
  std::erase(local_backends, "remote");

  cli::Parser parser("sofia_run",
                     "execute a saved image on the simulated device");
  parser
      .choice("--cipher", cipher, {"rectangle80", "speck64"},
              "device cipher (must match sofia_asm's)")
      .choice("--scheme", scheme, scheme::scheme_names(),
              "protection scheme the device implements (must match "
              "sofia_asm's)")
      .choice("--backend", backend, sim::backend_names(),
              "execution backend: cycle = paper-faithful timing, "
              "functional = fast architectural run, remote = ship to a "
              "worker")
      .option("--worker", worker, "CMD",
              "worker launch command for --backend remote (sh -c; e.g. "
              "'ssh host sofia_worker'; default: $SOFIA_WORKER)")
      .choice("--worker-backend", worker_backend, local_backends,
              "backend the remote worker executes on (default: "
              "$SOFIA_WORKER_BACKEND, then cycle)")
      .option("--key-seed", key_seed, "n",
              "device KeySet seed (must match sofia_asm's)")
      .option("--max-cycles", max_cycles, "n", "cycle budget (default 2e9)")
      .flag("--stats", stats, "print the detailed statistics block")
      .positional("image.img", path);
  parser.parse_or_exit(argc, argv);

  if (!worker.empty() && backend != "remote")
    return parser.fail("--worker is only meaningful with --backend remote");
  if (!worker_backend.empty() && backend != "remote")
    return parser.fail(
        "--worker-backend is only meaningful with --backend remote");

  try {
    auto profile = pipeline::DeviceProfile::parse(cipher);
    if (!key_seed.empty()) {
      std::uint64_t seed = 0;
      if (!cli::parse_number(key_seed, seed))
        return parser.fail("--key-seed: invalid number '" + key_seed + "'");
      profile = pipeline::DeviceProfile::from_seed(profile.cipher, seed);
    }
    profile.scheme = scheme;    // already validated by the choice flag
    profile.backend = backend;  // ditto
    if (!worker.empty()) {
      profile.remote = pipeline::DeviceProfile::parse_worker(worker,
                                                             worker_backend);
    } else if (backend == "remote") {
      // Command from $SOFIA_WORKER, but an explicit far-side backend choice
      // must not be silently dropped (empty stays unset: env, then cycle).
      profile.remote.backend = worker_backend;
    }

    auto session = pipeline::Pipeline::from_image_file(path, profile);
    if (max_cycles != 0) {
      sim::SimConfig config = session.sim_config();
      config.max_cycles = max_cycles;
      session.set_sim_config(config);
    }
    const auto& run = session.run();
    const auto& image = session.image();

    if (!run.output.empty()) std::fputs(run.output.c_str(), stdout);
    std::printf("[%s core] status=%s", image.sofia ? "SOFIA" : "vanilla",
                to_string(run.status).data());
    if (scheme != scheme::kDefaultScheme)
      std::printf(" scheme=%s", scheme.c_str());
    if (backend != sim::kDefaultBackend)
      std::printf(" backend=%s", backend.c_str());
    if (run.status == sim::RunResult::Status::kExited)
      std::printf(" code=%d", run.exit_code);
    if (run.status == sim::RunResult::Status::kReset)
      std::printf(" cause=%s pc=0x%x cycle=%llu",
                  to_string(run.reset.cause).data(), run.reset.pc,
                  static_cast<unsigned long long>(run.reset.cycle));
    if (run.status == sim::RunResult::Status::kFault)
      std::printf(" fault=%s", run.fault.c_str());
    std::printf(" cycles=%llu\n", static_cast<unsigned long long>(run.stats.cycles));
    if (stats) {
      const auto& s = run.stats;
      std::printf("insts=%llu nops=%llu loads=%llu stores=%llu branches=%llu "
                  "taken=%llu\n",
                  static_cast<unsigned long long>(s.insts),
                  static_cast<unsigned long long>(s.nops),
                  static_cast<unsigned long long>(s.loads),
                  static_cast<unsigned long long>(s.stores),
                  static_cast<unsigned long long>(s.branches),
                  static_cast<unsigned long long>(s.taken));
      std::printf("icache: %llu hits %llu misses; blocks=%llu verifications=%llu "
                  "ctr=%llu cbc=%llu gate-stalls=%llu\n",
                  static_cast<unsigned long long>(s.icache_hits),
                  static_cast<unsigned long long>(s.icache_misses),
                  static_cast<unsigned long long>(s.blocks_fetched),
                  static_cast<unsigned long long>(s.mac_verifications),
                  static_cast<unsigned long long>(s.ctr_ops),
                  static_cast<unsigned long long>(s.cbc_ops),
                  static_cast<unsigned long long>(s.store_gate_stalls));
    }
    return run.ok() ? (run.status == sim::RunResult::Status::kExited
                           ? run.exit_code
                           : 0)
                    : 3;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_run: %s\n", e.what());
    return 1;
  }
}
