// sofia-run: execute a saved image on the simulated device (vanilla core
// for plain images, SOFIA core for hardened ones).
//
//   sofia_run [options] image.img
//     --key-seed <n>     device KeySet seed (must match sofia_asm's)
//     --max-cycles <n>   cycle budget (default 2e9)
//     --stats            print the detailed statistics block
#include <cstdio>
#include <cstdlib>
#include <string>

#include "assembler/image_io.hpp"
#include "crypto/key_set.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sofia_run [--key-seed n] [--max-cycles n] [--stats] "
               "image.img\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  std::uint64_t key_seed = 0;
  bool have_seed = false;
  bool stats = false;
  std::uint64_t max_cycles = 0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--key-seed") { key_seed = std::strtoull(next_value(), nullptr, 0); have_seed = true; }
    else if (arg == "--max-cycles") max_cycles = std::strtoull(next_value(), nullptr, 0);
    else if (arg == "--stats") stats = true;
    else if (!arg.empty() && arg[0] == '-') usage();
    else if (path.empty()) path = arg;
    else usage();
  }
  if (path.empty()) usage();

  try {
    const auto image = assembler::load_image_file(path);
    sim::SimConfig config;
    if (have_seed) {
      Rng rng(key_seed);
      config.keys = crypto::KeySet::random(crypto::CipherKind::kRectangle80, rng);
    } else {
      config.keys = crypto::KeySet::example(crypto::CipherKind::kRectangle80);
    }
    if (max_cycles != 0) config.max_cycles = max_cycles;
    const auto run = sim::run_image(image, config);
    if (!run.output.empty()) std::fputs(run.output.c_str(), stdout);
    std::printf("[%s core] status=%s", image.sofia ? "SOFIA" : "vanilla",
                to_string(run.status).data());
    if (run.status == sim::RunResult::Status::kExited)
      std::printf(" code=%d", run.exit_code);
    if (run.status == sim::RunResult::Status::kReset)
      std::printf(" cause=%s pc=0x%x cycle=%llu",
                  to_string(run.reset.cause).data(), run.reset.pc,
                  static_cast<unsigned long long>(run.reset.cycle));
    if (run.status == sim::RunResult::Status::kFault)
      std::printf(" fault=%s", run.fault.c_str());
    std::printf(" cycles=%llu\n", static_cast<unsigned long long>(run.stats.cycles));
    if (stats) {
      const auto& s = run.stats;
      std::printf("insts=%llu nops=%llu loads=%llu stores=%llu branches=%llu "
                  "taken=%llu\n",
                  static_cast<unsigned long long>(s.insts),
                  static_cast<unsigned long long>(s.nops),
                  static_cast<unsigned long long>(s.loads),
                  static_cast<unsigned long long>(s.stores),
                  static_cast<unsigned long long>(s.branches),
                  static_cast<unsigned long long>(s.taken));
      std::printf("icache: %llu hits %llu misses; blocks=%llu verifications=%llu "
                  "ctr=%llu cbc=%llu gate-stalls=%llu\n",
                  static_cast<unsigned long long>(s.icache_hits),
                  static_cast<unsigned long long>(s.icache_misses),
                  static_cast<unsigned long long>(s.blocks_fetched),
                  static_cast<unsigned long long>(s.mac_verifications),
                  static_cast<unsigned long long>(s.ctr_ops),
                  static_cast<unsigned long long>(s.cbc_ops),
                  static_cast<unsigned long long>(s.store_gate_stalls));
    }
    return run.ok() ? (run.status == sim::RunResult::Status::kExited
                           ? run.exit_code
                           : 0)
                    : 3;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_run: %s\n", e.what());
    return 1;
  }
}
