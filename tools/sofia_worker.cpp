// sofia-worker: the far side of the remote-execution backend. Speaks the
// versioned wire protocol (src/remote/wire.hpp) on stdin/stdout — a
// request→execute→reply loop that serves hello (describe a backend) and
// run (execute an image under a SimConfig) requests until the coordinator
// closes the stream. Because the transport is plain stdio, the same binary
// works as a local subprocess, at the end of an `ssh host sofia_worker`
// hop, or inside `docker run -i`. All diagnostics go to stderr; stdout
// carries frames only.
#include <cstdio>

#include "remote/worker.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  sofia::cli::Parser parser(
      "sofia_worker",
      "serve remote-execution requests (wire frames) on stdin/stdout");
  parser.parse_or_exit(argc, argv);
  return sofia::remote::serve(stdin, stdout);
}
