// sofia-report: one-command reproduction summary — runs the headline
// experiments (Table I, the ADPCM benchmark, the security analysis, a
// fault campaign) and prints a compact paper-vs-measured table. The full
// sweeps live in sofia_sweep and the bench/ binaries; this is the "is the
// reproduction healthy?" view.
//
//   sofia_report [--quick] [--threads N]
#include <cstdio>
#include <string>

#include "driver/sweep.hpp"
#include "scheme/scheme.hpp"
#include "security/attacks.hpp"
#include "security/forgery.hpp"
#include "sim/backend.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  bool quick = false;
  std::uint32_t threads = 1;
  std::string backend(sim::kDefaultBackend);
  std::string scheme(scheme::kDefaultScheme);

  cli::Parser parser("sofia_report",
                     "one-command paper-vs-measured health report");
  parser.flag("--quick", quick, "smaller workloads and fault campaign")
      .option("--threads", threads, "N",
              "worker threads for the measurements (default 1)")
      .choice("--backend", backend, sim::backend_names(),
              "execution backend for the ADPCM measurement (functional "
              "checks integrity only; its cycle numbers are not timing)")
      .choice("--scheme", scheme, scheme::scheme_names(),
              "protection scheme for the ADPCM measurement (the paper "
              "targets are sofia-cbcmac numbers)");
  parser.parse_or_exit(argc, argv);
  if (threads < 1) return parser.fail("--threads must be >= 1");
  const std::uint32_t samples = quick ? 1024 : 8192;
  const auto keys = bench::bench_keys();
  const hw::HwModel model;

  std::printf("SOFIA reproduction report\n");
  std::printf("=========================\n\n");

  // --- Table I ---------------------------------------------------------------
  const auto vanilla = model.vanilla();
  const auto sofia_hw = model.sofia(2);
  std::printf("%-44s %16s %16s\n", "experiment", "paper", "measured");
  bench::print_rule(80);
  std::printf("%-44s %16s %16.0f\n", "Table I vanilla slices", "5889",
              vanilla.slices);
  std::printf("%-44s %16s %16.0f\n", "Table I SOFIA slices", "7551",
              sofia_hw.slices);
  std::printf("%-44s %16s %15.1f%%\n", "Table I area overhead", "+28.2%",
              hw::overhead_pct(vanilla.slices, sofia_hw.slices));
  std::printf("%-44s %16s %16.1f\n", "Table I SOFIA clock (MHz)", "50.1",
              sofia_hw.clock_mhz);

  // --- security analytics ------------------------------------------------------
  std::printf("%-44s %16s %16.0f\n", "SI forgery years (64b, 8cyc, 50MHz)",
              "46795", security::forgery_years(64, 8, 50e6));
  std::printf("%-44s %16s %16.0f\n", "CFI attack years (16 cyc/trial)", "93590",
              security::forgery_years(64, 16, 50e6));

  // --- ADPCM (through the sweep driver) ----------------------------------------
  driver::SweepSpec adpcm;
  adpcm.name = "report-adpcm";
  adpcm.workloads = {"adpcm_encode", "adpcm_decode"};
  adpcm.size_override = samples;
  adpcm.base_seed = 1;  // the paper-comparison waveform
  adpcm.configs = {driver::paper_default_config()};
  adpcm = driver::with_backend(std::move(adpcm), backend);
  adpcm = driver::with_scheme(std::move(adpcm), scheme);
  const auto sweep = driver::run_sweep(adpcm, threads);
  if (!sweep.all_ok()) {
    for (const auto& job : sweep.jobs)
      if (!job.ok)
        std::fprintf(stderr, "sofia_report: %s failed: %s\n",
                     job.job.workload.c_str(), job.error.c_str());
    return 1;
  }
  double text_ratio = 0;
  double cyc = 0;
  double time_ovh = 0;
  const double n = static_cast<double>(sweep.jobs.size());
  for (const auto& job : sweep.jobs) {
    text_ratio += job.m.size_ratio() / n;
    cyc += job.m.cycle_overhead_pct() / n;
    time_ovh += job.m.time_overhead_pct(model, 2) / n;
  }
  std::printf("%-44s %16s %15.2fx\n", "ADPCM text expansion", "2.41x", text_ratio);
  // A backend without cycle accuracy reports instruction counts in
  // stats.cycles; presenting those next to the paper's timing targets
  // would be a lie, so the timing rows are suppressed. For "remote" the
  // answer comes from the far-side backend (a hello over the wire); if
  // that probe fails after the sweep already ran, claiming cycle accuracy
  // is the one wrong answer, so fall back to suppressing.
  const bool cycle_accurate = [&] {
    try {
      return sim::make_backend(backend)->capabilities().cycle_accurate;
    } catch (const Error&) {
      return false;
    }
  }();
  if (cycle_accurate) {
    std::printf("%-44s %16s %15.1f%%\n",
                "ADPCM cycle overhead (see EXPERIMENTS E3)", "+13.7%", cyc);
    std::printf("%-44s %16s %15.1f%%\n", "ADPCM exec-time overhead", "+110%",
                time_ovh);
  } else {
    std::printf("%-44s %16s %16s\n", "ADPCM cycle overhead (see EXPERIMENTS E3)",
                "+13.7%", "n/a");
    std::printf("%-44s %16s %16s\n", "ADPCM exec-time overhead", "+110%",
                "n/a");
    std::printf("%-44s\n",
                "  (backend is not cycle-accurate; integrity checked only)");
  }

  // --- attack round-trip ---------------------------------------------------------
  const auto rop = security::run_rop_demo(keys);
  const bool rop_ok =
      rop.vanilla_attacked.output.find("6666") != std::string::npos &&
      rop.sofia_attacked.status == sim::RunResult::Status::kReset;
  std::printf("%-44s %16s %16s\n", "ROP: vanilla breached / SOFIA reset",
              "detect", rop_ok ? "ok" : "FAIL");
  const auto jop = security::run_jop_demo(keys);
  const bool jop_ok =
      jop.vanilla_attacked.output.find("7777") != std::string::npos &&
      jop.sofia_attacked.output.empty();
  std::printf("%-44s %16s %16s\n", "JOP: vanilla breached / SOFIA trapped",
              "detect", jop_ok ? "ok" : "FAIL");

  Rng rng(1);
  const auto faults = security::run_fault_campaign(
      "main:\n li r2, 40\nloop:\n addi r1, r1, 3\n addi r2, r2, -1\n bnez r2, "
      "loop\n li r10, 0xFFFF0008\n sw r1, 0(r10)\n halt\n",
      keys, /*sofia=*/true, quick ? 40 : 150, rng);
  std::printf("%-44s %16s %10llu/%llu\n", "fetch faults detected (SOFIA)",
              "all",
              static_cast<unsigned long long>(faults.detected),
              static_cast<unsigned long long>(faults.trials));
  bench::print_rule(80);
  std::printf("\nDetails: EXPERIMENTS.md; full sweeps: sofia_sweep + build/bench/*.\n");
  return (rop_ok && jop_ok && faults.detected == faults.trials) ? 0 : 1;
}
