// sofia-cache: inspect and maintain a content-addressed result cache
// (src/cache/) shared by sofia_sweep, sofia_attack and sofia_fleet.
//
//   sofia_cache stats  --cache DIR [--json PATH]   entry/byte totals per kind
//   sofia_cache verify --cache DIR                 re-hash every entry
//   sofia_cache gc     --cache DIR --max-bytes N   LRU-evict down to N bytes
//
// The cache directory resolves like the producers' --cache flag: the
// explicit option wins, else $SOFIA_CACHE. `verify` exits 1 when any entry
// fails its integrity re-hash (such entries are loud misses at load time,
// never wrong results — verify exists to surface them before a big run).
#include <cstdio>
#include <map>
#include <string>

#include "cache/result_store.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"

namespace {

using namespace sofia;

std::string resolve_root(const std::string& dir) {
  const auto store = cache::ResultStore::open(dir);
  if (!store)
    throw Error("no cache directory (pass --cache DIR or set $SOFIA_CACHE)");
  return store->root().string();
}

struct KindTotals {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

int run_stats(const std::string& dir, const std::string& json_path) {
  const std::string root = resolve_root(dir);
  std::uint64_t entries = 0, bytes = 0, unreadable = 0;
  std::map<std::string, KindTotals> kinds;  // ordered -> deterministic JSON
  for (const auto& info : cache::scan(root)) {
    ++entries;
    bytes += info.file_bytes;
    if (!info.header_ok) {
      ++unreadable;
      continue;
    }
    auto& k = kinds[info.kind];
    ++k.entries;
    k.bytes += info.file_bytes;
  }

  std::printf("cache %s\n", root.c_str());
  std::printf("  %llu entr%s, %llu byte(s)\n",
              static_cast<unsigned long long>(entries),
              entries == 1 ? "y" : "ies",
              static_cast<unsigned long long>(bytes));
  for (const auto& [kind, k] : kinds)
    std::printf("  %-18s %8llu entr%s %12llu byte(s)\n", kind.c_str(),
                static_cast<unsigned long long>(k.entries),
                k.entries == 1 ? "y  " : "ies",
                static_cast<unsigned long long>(k.bytes));
  if (unreadable != 0)
    std::printf("  %llu entr%s with unreadable header(s) (see verify)\n",
                static_cast<unsigned long long>(unreadable),
                unreadable == 1 ? "y" : "ies");

  if (!json_path.empty()) {
    json::Writer w(2);
    w.begin_object();
    w.member("schema", "sofia-cache-stats-v1");
    w.key("cache").begin_object();
    w.member("root", root);
    w.member("entries", entries);
    w.member("bytes", bytes);
    w.member("unreadable", unreadable);
    w.key("kinds").begin_object();
    for (const auto& [kind, k] : kinds) {
      w.key(kind).begin_object();
      w.member("entries", k.entries);
      w.member("bytes", k.bytes);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    w.end_object();
    std::string doc = w.str();
    doc += '\n';
    io::emit_document(json_path, doc);
  }
  return 0;
}

int run_verify(const std::string& dir) {
  const std::string root = resolve_root(dir);
  const auto report = cache::verify_entries(root);
  std::printf("cache %s: %llu entr%s checked, %llu ok, %llu bad\n",
              root.c_str(), static_cast<unsigned long long>(report.checked),
              report.checked == 1 ? "y" : "ies",
              static_cast<unsigned long long>(report.ok),
              static_cast<unsigned long long>(report.bad));
  for (const auto& problem : report.problems)
    std::printf("  BAD %s\n", problem.c_str());
  return report.bad == 0 ? 0 : 1;
}

int run_gc(const std::string& dir, std::uint64_t max_bytes) {
  const std::string root = resolve_root(dir);
  const auto report = cache::gc(root, max_bytes);
  std::printf("cache %s: kept %llu (%llu bytes), evicted %llu (%llu bytes)",
              root.c_str(), static_cast<unsigned long long>(report.kept),
              static_cast<unsigned long long>(report.kept_bytes),
              static_cast<unsigned long long>(report.removed),
              static_cast<unsigned long long>(report.removed_bytes));
  if (report.tmp_removed != 0)
    std::printf(", swept %llu stale temp file(s)",
                static_cast<unsigned long long>(report.tmp_removed));
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::string cache_dir;
  std::string json_path;
  std::uint64_t max_bytes = 0;
  bool have_max_bytes = false;
  std::string max_bytes_text;

  cli::Parser parser("sofia_cache",
                     "inspect and maintain a content-addressed result cache");
  parser
      .option("--cache", cache_dir, "DIR",
              "cache directory (default: $SOFIA_CACHE)")
      .option("--json", json_path, "PATH",
              "stats: also write a sofia-cache-stats-v1 document "
              "('-' = stdout)")
      .option("--max-bytes", max_bytes_text, "N",
              "gc: evict least-recently-used entries until the cache fits")
      .positional("stats|verify|gc", command);
  parser.parse_or_exit(argc, argv);

  if (!max_bytes_text.empty()) {
    if (!cli::parse_number(max_bytes_text, max_bytes))
      return parser.fail("--max-bytes: expected a number, got '" +
                         max_bytes_text + "'");
    have_max_bytes = true;
  }

  try {
    if (command == "stats") return run_stats(cache_dir, json_path);
    if (command == "verify") return run_verify(cache_dir);
    if (command == "gc") {
      if (!have_max_bytes) return parser.fail("gc needs --max-bytes N");
      return run_gc(cache_dir, max_bytes);
    }
    return parser.fail("unknown command '" + command +
                       "' (expected stats, verify or gc)");
  } catch (const sofia::Error& e) {
    std::fprintf(stderr, "sofia_cache: %s\n", e.what());
    return 1;
  }
}
