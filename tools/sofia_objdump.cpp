// sofia-objdump: inspect a saved image. Vanilla images disassemble fully;
// SOFIA images show the block structure and raw ciphertext only — without
// the device keys the text is unintelligible, which is exactly the paper's
// software-confidentiality ("copyright protection") property.
#include <cstdio>
#include <string>

#include "assembler/image_io.hpp"
#include "isa/disasm.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/hex.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  std::uint32_t block_words = 8;
  std::string path;

  cli::Parser parser("sofia_objdump", "inspect a saved image");
  parser
      .option("--block-words", block_words, "n",
              "block size used for the SOFIA block view (default 8)")
      .positional("image.img", path);
  parser.parse_or_exit(argc, argv);
  if (block_words == 0) return parser.fail("--block-words must be >= 1");

  try {
    const auto image = assembler::load_image_file(path);
    std::printf("%s image: text %u B @%s, data %zu B @%s, entry %s\n",
                image.sofia ? "SOFIA" : "vanilla", image.text_bytes(),
                hex32_0x(image.text_base).c_str(), image.data.size(),
                hex32_0x(image.data_base).c_str(), hex32_0x(image.entry).c_str());
    if (image.sofia)
      std::printf("omega 0x%04x, %s CTR; ciphertext only (device keys "
                  "required to decrypt):\n",
                  image.omega, image.per_pair ? "per-pair" : "per-word");
    for (std::size_t i = 0; i < image.text.size(); ++i) {
      const std::uint32_t addr =
          image.text_base + static_cast<std::uint32_t>(i * 4);
      if (image.sofia) {
        const std::uint32_t off = static_cast<std::uint32_t>(i) % block_words;
        if (off == 0)
          std::printf("block %zu @%s\n", i / block_words, hex32_0x(addr).c_str());
        std::printf("  w%u %s  %s\n", off, hex32_0x(addr).c_str(),
                    hex32(image.text[i]).c_str());
      } else {
        std::printf("%s: %s  %s\n", hex32_0x(addr).c_str(),
                    hex32(image.text[i]).c_str(),
                    isa::disassemble_word(image.text[i], addr).c_str());
      }
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_objdump: %s\n", e.what());
    return 1;
  }
}
