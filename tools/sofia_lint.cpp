// sofia-lint: static integrity verifier for hardened SOFIA images. Checks
// the full installation contract without running anything: every encoded
// control transfer must land on a block entry sealed for exactly that
// predecessor (seals re-derived per protection scheme and compared against
// the image bytes), plus block-policy conformance, ambiguous predecessors,
// unreachable sealed blocks, dataflow-proven store/indirect-target facts
// and image-metadata mismatches. Findings render as text, as a
// deterministic sofia-lint-v2 JSON document, or as SARIF 2.1.0 for CI
// annotation; --assert-clean turns errors into exit code 1 for CI.
//
//   sofia_lint program.s                      lint the freshly hardened image
//   sofia_lint --workload fib --size 8        same, for a registered workload
//   sofia_lint program.s --image prog.img     lint a saved image against its
//                                             program and key material
//   sofia_lint --image prog.img               image-only metadata checks
//   sofia_lint --rules [id...]                print (or validate) rule ids
//   sofia_lint --workload fib --sarif o.sarif emit a SARIF 2.1.0 document
#include <cstdio>
#include <string>
#include <vector>

#include "assembler/image_io.hpp"
#include "pipeline/pipeline.hpp"
#include "scheme/scheme.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "verify/verify.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  std::string input;
  std::string workload;
  std::string image_path;
  std::string key_seed;
  std::string cipher = "rectangle80";
  std::string scheme(scheme::kDefaultScheme);
  std::string json_path;
  std::string sarif_path;
  std::vector<std::string> rule_ids;
  std::uint64_t seed = 1;
  std::uint32_t size = 0;         // 0 = the workload's default size
  std::uint32_t block_words = 0;  // 0 = policy default
  std::uint32_t store_min = ~0u;  // ~0 = policy default
  bool per_word = false;
  bool assert_clean = false;
  bool rules = false;
  bool quiet = false;

  cli::Parser parser("sofia_lint",
                     "statically verify a hardened image against the SOFIA "
                     "contract");
  parser
      .option("--workload", workload, "NAME",
              "lint a registered workload instead of a source file")
      .option("--seed", seed, "n", "workload generator seed (default 1)")
      .option("--size", size, "n", "workload size (default: its registry size)")
      .option("--image", image_path, "FILE",
              "lint this saved image (default: the freshly hardened one)")
      .choice("--cipher", cipher, {"rectangle80", "speck64"}, "device cipher")
      .choice("--scheme", scheme, scheme::scheme_names(),
              "protection scheme the image was sealed with")
      .option("--key-seed", key_seed, "n",
              "derive the device KeySet from a seed (default: example keys)")
      .flag("--per-word", per_word, "Alg. 1 per-word CTR (default: per-pair)")
      .option("--block-words", block_words, "n", "block size in words (default 8)")
      .option("--store-min", store_min, "n",
              "first word index where stores may sit (default 4)")
      .option("--json", json_path, "PATH",
              "write a sofia-lint-v2 document to PATH ('-' = stdout)")
      .option("--sarif", sarif_path, "PATH",
              "write a SARIF 2.1.0 document to PATH ('-' = stdout)")
      .flag("--assert-clean", assert_clean,
            "exit 1 when any error-severity finding is reported")
      .flag("--rules", rules,
            "print the rule catalog and exit; trailing ids select (and "
            "validate) specific rules")
      .flag("--quiet", quiet, "suppress the text report")
      .optional_positional("input.s", input)
      .positional_list("rule-id", rule_ids);
  parser.parse_or_exit(argc, argv);

  if (rules) {
    // With ids given, validate each against the live catalog and print
    // only those rows; an unknown id names itself and the valid set.
    if (!input.empty()) rule_ids.insert(rule_ids.begin(), input);
    std::vector<const verify::RuleInfo*> rows;
    for (const std::string& id : rule_ids) {
      const verify::RuleInfo* info = verify::find_rule(id);
      if (!info) {
        std::string valid;
        for (const auto& r : verify::rule_catalog()) {
          if (!valid.empty()) valid += ", ";
          valid += r.name;
        }
        std::fprintf(stderr,
                     "sofia_lint: unknown rule id '%s' (valid: %s)\n",
                     id.c_str(), valid.c_str());
        return 2;
      }
      rows.push_back(info);
    }
    if (rows.empty())
      for (const auto& info : verify::rule_catalog()) rows.push_back(&info);
    for (const verify::RuleInfo* info : rows)
      std::printf("%-24s %-8s %.*s\n", std::string(info->name).c_str(),
                  std::string(verify::to_string(info->severity)).c_str(),
                  static_cast<int>(info->description.size()),
                  info->description.data());
    return 0;
  }
  if (!rule_ids.empty())
    return parser.fail("unexpected argument '" + rule_ids.front() +
                       "' (rule ids are only valid with --rules)");
  if (!input.empty() && !workload.empty())
    return parser.fail("give either input.s or --workload, not both");
  if (input.empty() && workload.empty() && image_path.empty())
    return parser.fail("nothing to lint: give input.s, --workload or --image");

  // With a document on stdout, the text report moves to stderr so the
  // output stream stays byte-clean for collectors.
  std::FILE* log = json_path == "-" || sarif_path == "-" ? stderr : stdout;

  try {
    auto profile = pipeline::DeviceProfile::parse(cipher);
    if (!key_seed.empty()) {
      std::uint64_t kseed = 0;
      if (!cli::parse_number(key_seed, kseed))
        return parser.fail("--key-seed: invalid number '" + key_seed + "'");
      profile = pipeline::DeviceProfile::from_seed(profile.cipher, kseed);
    }
    profile.scheme = scheme;  // already validated by the choice flag
    profile.granularity = per_word ? crypto::Granularity::kPerWord
                                   : crypto::Granularity::kPerPair;
    if (block_words != 0) profile.policy.words_per_block = block_words;
    if (store_min != ~0u) profile.policy.store_min_word = store_min;

    auto session = [&]() -> pipeline::Pipeline {
      if (!workload.empty()) {
        const auto& spec = workloads::workload(workload);
        return pipeline::Pipeline::from_workload(
            spec, seed, size != 0 ? size : spec.default_size, profile);
      }
      if (!input.empty())
        return pipeline::Pipeline::from_source_file(input, profile);
      return pipeline::Pipeline::from_image_file(image_path, profile);
    }();

    // A program session lints either its own hardened image or, with
    // --image, the saved image against the program's model.
    const bool external_image = !image_path.empty() &&
                                (!workload.empty() || !input.empty());
    const verify::Report report =
        external_image
            ? session.lint_image(assembler::load_image_file(image_path))
            : session.lint();

    if (!quiet) std::fputs(report.render_text().c_str(), log);

    if (!json_path.empty()) {
      json::Writer w(2);
      w.begin_object();
      w.member("schema", "sofia-lint-v2");
      w.member("name", session.name());
      w.key("profile");
      profile.to_json(w);
      w.key("report");
      report.to_json(w);
      w.end_object();
      std::string doc = w.str();
      doc += '\n';
      io::emit_document(json_path, doc);
    }

    if (!sarif_path.empty()) {
      json::Writer w(2);
      verify::to_sarif(report, session.name(), w);
      std::string doc = w.str();
      doc += '\n';
      io::emit_document(sarif_path, doc);
    }

    return assert_clean && !report.clean() ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_lint: %s\n", e.what());
    return 2;
  }
}
