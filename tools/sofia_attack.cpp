// sofia-attack: mutation-based adversarial campaigns against the hardened
// device. `--campaign` runs a seeded population of tampered images, forged
// headers, spliced blocks and fault schedules per matrix cell (scheme ×
// cipher × granularity) and reports detection rate, detection latency and
// minimized surviving counterexamples as a sofia-attack-campaign-v1 JSON
// document. The document is byte-identical for any --threads and any
// --shard K/N split: `--merge out.json shard*.json` folds shard documents
// back into the canonical unsharded bytes. `--json -` streams to stdout
// (progress moves to stderr) for fleet collectors.
//
// Exit code: 0 iff every authenticated cell detected every effective
// tamper (the "null" encrypt-only baseline is expected to leak and never
// gates); 1 when an authenticated cell has escapes, 2 on usage/errors.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_store.hpp"
#include "campaign/campaign.hpp"
#include "pipeline/device_profile.hpp"
#include "scheme/scheme.hpp"
#include "sim/backend.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"

namespace {

/// The run's cache counters as a side document ({"cache": {...}} stanza);
/// the campaign document itself stays byte-identical with and without one.
std::string cache_stats_json(const sofia::cache::ResultStore& store) {
  const auto s = store.stats();
  sofia::json::Writer w(2);
  w.begin_object();
  w.member("schema", "sofia-cache-stats-v1");
  w.key("cache").begin_object();
  w.member("root", store.root().string());
  w.member("hits", s.hits);
  w.member("misses", s.misses);
  w.member("stored", s.stored);
  w.member("failures", s.failures);
  w.end_object();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  std::string workload;
  std::string scheme;       // empty = keep the full scheme axis
  std::string cipher;       // empty = keep both ciphers
  std::string granularity;  // empty = keep both granularities
  std::string backend = "functional";
  std::string json_path;
  std::string cache_dir;
  std::string cache_stats_path;
  std::string shard_text;
  std::string merge_out;
  std::vector<std::string> merge_inputs;
  std::uint32_t size = 0;
  std::uint32_t jobs = 1000;
  std::uint64_t seed = 1;
  std::uint32_t threads = std::max(1u, std::thread::hardware_concurrency());
  bool campaign_run = false;
  bool smoke = false;
  bool mutators = false;
  bool quiet = false;

  cli::Parser parser("sofia_attack",
                     "adversarial mutation campaigns -> JSON verdicts");
  parser
      .flag("--campaign", campaign_run,
            "run the attack matrix (every registered scheme x cipher x "
            "granularity)")
      .option("--jobs", jobs, "N", "trials per matrix cell (default: 1000)")
      .option("--seed", seed, "N",
              "campaign seed; per-trial streams are substreams of it "
              "(default: 1)")
      .option("--workload", workload, "NAME",
              "victim from the workloads registry (default: the built-in "
              "attack victim)")
      .option("--size", size, "N", "workload size (0 = registry default)")
      .choice("--scheme", scheme, scheme::scheme_names(),
              "restrict the matrix to one protection scheme")
      .choice("--cipher", cipher, {"rectangle80", "speck64"},
              "restrict the matrix to one cipher")
      .choice("--granularity", granularity, {"per-pair", "per-word"},
              "restrict the matrix to one CTR granularity")
      .choice("--backend", backend, sofia::sim::backend_names(),
              "execution backend for every trial (default: functional)")
      .option("--threads", threads, "N",
              "worker threads (default: hardware concurrency)")
      .option("--json", json_path, "PATH",
              "write the campaign document to PATH ('-' = stdout)")
      .option("--cache", cache_dir, "DIR",
              "content-addressed result cache: resume interrupted campaigns "
              "and reuse prior trials (default: $SOFIA_CACHE when set)")
      .option("--cache-stats", cache_stats_path, "PATH",
              "write this run's cache hit/miss counters as a JSON document")
      .option("--shard", shard_text, "K/N",
              "run only job indices congruent to K mod N")
      .option("--merge", merge_out, "OUT.json",
              "merge shard documents (trailing args) into OUT.json and exit")
      .flag("--smoke", smoke,
            "shrink the matrix to one cell per scheme (seconds-long gate)")
      .flag("--mutators", mutators, "list the mutation catalog and exit")
      .flag("--quiet", quiet, "suppress the per-cell progress table")
      .positional_list("in.json", merge_inputs);
  parser.parse_or_exit(argc, argv);

  if (mutators) {
    for (const auto& info : campaign::mutator_catalog())
      std::printf("%-22s %s\n", std::string(info.name).c_str(),
                  std::string(info.description).c_str());
    return 0;
  }
  if (threads < 1) return parser.fail("--threads must be >= 1");
  if (jobs < 1) return parser.fail("--jobs must be >= 1");
  if (merge_out.empty() && !merge_inputs.empty())
    return parser.fail("unexpected argument '" + merge_inputs.front() +
                       "' (input documents are only valid with --merge)");
  if (!campaign_run && merge_out.empty())
    return parser.fail("nothing to do (use --campaign, --merge or --mutators)");

  // With the document on stdout, every informational line moves to stderr
  // so the output stream stays byte-clean for the collector.
  std::FILE* log = (json_path == "-" || merge_out == "-") ? stderr : stdout;

  try {
    if (!merge_out.empty()) {
      if (merge_inputs.empty())
        return parser.fail("--merge needs at least one input document");
      std::vector<std::string> documents;
      documents.reserve(merge_inputs.size());
      for (const auto& path : merge_inputs)
        documents.push_back(io::read_file(path));
      io::emit_document(merge_out, campaign::merge_json(documents));
      std::fprintf(log, "merged %zu document(s) into %s\n", documents.size(),
                   merge_out.c_str());
      return 0;
    }

    driver::ShardSpec shard;
    if (!shard_text.empty()) shard = driver::ShardSpec::parse(shard_text);

    campaign::CampaignSpec spec = campaign::default_campaign();
    if (smoke) spec = campaign::smoke(std::move(spec));
    spec.workload = workload;
    spec.size = size;
    spec.jobs_per_cell = jobs;
    spec.seed = seed;
    spec.backend = backend;
    const auto cipher_kind =
        cipher.empty() ? crypto::CipherKind::kRectangle80
                       : pipeline::DeviceProfile::parse_cipher(cipher);
    std::erase_if(spec.cells, [&](const campaign::CellSpec& cell) {
      if (!scheme.empty() && cell.scheme != scheme) return true;
      if (!cipher.empty() && cell.cipher != cipher_kind) return true;
      if (!granularity.empty() &&
          crypto::to_string(cell.granularity) != granularity)
        return true;
      return false;
    });
    if (spec.cells.empty())
      return parser.fail("the --scheme/--cipher/--granularity filters left "
                         "no matrix cells");

    if (shard.is_whole()) {
      std::fprintf(log, "campaign %-12s %zu cell(s) x %u job(s) on %u "
                        "thread(s)\n",
                   spec.name.c_str(), spec.cells.size(), jobs, threads);
    } else {
      std::fprintf(log,
                   "campaign %-12s shard %u/%u of %zu cell(s) x %u job(s) "
                   "on %u thread(s)\n",
                   spec.name.c_str(), shard.index, shard.count,
                   spec.cells.size(), jobs, threads);
    }

    campaign::CellProgressFn progress;
    if (!quiet) {
      progress = [log](const campaign::CellResult& cell) {
        std::fprintf(log,
                     "  %-36s jobs %6llu  detected %6llu  harmless %6llu  "
                     "escaped %6llu  rate %6.2f%%\n",
                     cell.cell.label().c_str(),
                     static_cast<unsigned long long>(cell.jobs),
                     static_cast<unsigned long long>(cell.detected),
                     static_cast<unsigned long long>(cell.harmless),
                     static_cast<unsigned long long>(cell.escaped),
                     100.0 * cell.detection_rate());
      };
    }
    // Cache warnings (loud misses, store failures) always go to stderr so
    // they survive --quiet and never touch a stdout document.
    const auto store = cache::ResultStore::open(cache_dir, [](const std::string& m) {
      std::fprintf(stderr, "sofia_attack: %s\n", m.c_str());
    });
    if (store)
      std::fprintf(log, "cache: %s\n", store->root().string().c_str());
    if (!store && !cache_stats_path.empty())
      return parser.fail("--cache-stats needs --cache (or $SOFIA_CACHE)");

    const auto result =
        campaign::run_campaign(spec, threads, progress, shard, store.get());
    std::fprintf(log, "done in %.2f s (%u thread(s)); %s\n",
                 result.wall_seconds, result.threads_used,
                 result.authenticated_clean()
                     ? "authenticated schemes clean"
                     : "ESCAPES in an authenticated scheme");
    if (store) {
      const auto cs = store->stats();
      std::fprintf(stderr,
                   "cache: %llu hit(s), %llu miss(es), %llu stored, "
                   "%llu failure(s)\n",
                   static_cast<unsigned long long>(cs.hits),
                   static_cast<unsigned long long>(cs.misses),
                   static_cast<unsigned long long>(cs.stored),
                   static_cast<unsigned long long>(cs.failures));
      if (!cache_stats_path.empty())
        io::emit_document(cache_stats_path, cache_stats_json(*store));
    }
    for (const auto& cell : result.cells) {
      if (!cell.authenticated) continue;
      for (const auto& e : cell.escapes) {
        std::string min;
        for (const auto& m : e.minimized) {
          if (!min.empty()) min += " + ";
          min += m.describe();
        }
        std::fprintf(log, "  ESCAPE %-36s job %llu (%s): %s\n",
                     cell.cell.label().c_str(),
                     static_cast<unsigned long long>(e.job), e.status.c_str(),
                     min.c_str());
      }
    }

    if (!json_path.empty()) {
      io::emit_document(json_path, campaign::to_json(result));
      if (json_path != "-")
        std::fprintf(log, "wrote %s\n", json_path.c_str());
    }
    return result.authenticated_clean() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_attack: %s\n", e.what());
    return 2;
  }
}
