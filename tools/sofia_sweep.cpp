// sofia-sweep: run an experiment matrix (workloads × configurations) on a
// thread pool and emit the results as a machine-readable JSON document.
// The built-in matrices cover the paper's headline tables plus the repo's
// ablations; adding a scenario is one entry in src/driver/sweep.cpp.
//
// Multi-machine use: `--shard K/N` runs only job indices ≡ K (mod N), and
// `--merge out.json in1.json in2.json...` concatenates the per-job records
// back into the canonical document — byte-identical to an unsharded run.
// `--json -` streams the document to stdout (progress moves to stderr), so
// a coordinator like sofia_fleet can collect shards over any stdio
// transport (subprocess, ssh, container) without a shared filesystem.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_store.hpp"
#include "driver/sweep.hpp"
#include "scheme/scheme.hpp"
#include "sim/backend.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"

namespace {

/// The run's cache counters as a side document ({"cache": {...}} stanza) —
/// deliberately separate from the sweep document, which must stay
/// byte-identical with and without a cache.
std::string cache_stats_json(const sofia::cache::ResultStore& store) {
  const auto s = store.stats();
  sofia::json::Writer w(2);
  w.begin_object();
  w.member("schema", "sofia-cache-stats-v1");
  w.key("cache").begin_object();
  w.member("root", store.root().string());
  w.member("hits", s.hits);
  w.member("misses", s.misses);
  w.member("stored", s.stored);
  w.member("failures", s.failures);
  w.end_object();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  std::string matrix_name = "suite-overhead";
  std::string backend(sim::kDefaultBackend);
  std::string scheme;  // empty = keep each cell's own scheme axis
  std::string json_path;
  std::string cache_dir;
  std::string cache_stats_path;
  std::string shard_text;
  std::string merge_out;
  std::vector<std::string> merge_inputs;
  std::uint32_t threads = std::max(1u, std::thread::hardware_concurrency());
  bool smoke = false;
  bool lint = false;
  bool quiet = false;
  bool list = false;

  cli::Parser parser("sofia_sweep",
                     "parallel experiment matrix -> JSON results");
  parser
      .option("--matrix", matrix_name, "NAME",
              "matrix to run (default: suite-overhead; see --list)")
      .choice("--backend", backend, sofia::sim::backend_names(),
              "execution backend for every job (functional = fast "
              "architectural prefilter, no timing)")
      .choice("--scheme", scheme, scheme::scheme_names(),
              "force a protection scheme onto every job (default: keep "
              "each matrix cell's own, e.g. the scheme matrix's axis)")
      .option("--threads", threads, "N",
              "worker threads (default: hardware concurrency)")
      .option("--json", json_path, "PATH",
              "write the results document to PATH ('-' = stdout)")
      .option("--cache", cache_dir, "DIR",
              "content-addressed result cache: reuse prior results and "
              "store new ones (default: $SOFIA_CACHE when set)")
      .option("--cache-stats", cache_stats_path, "PATH",
              "write this run's cache hit/miss counters as a JSON document")
      .option("--shard", shard_text, "K/N",
              "run only job indices congruent to K mod N")
      .option("--merge", merge_out, "OUT.json",
              "merge shard documents (trailing args) into OUT.json and exit")
      .flag("--smoke", smoke, "shrink the matrix to a seconds-long smoke run")
      .flag("--lint", lint,
            "statically lint each hardened image first; findings fail the "
            "job early and land in its JSON record")
      .flag("--list", list, "list the built-in matrices and exit")
      .flag("--quiet", quiet, "suppress the per-job progress table")
      .positional_list("in.json", merge_inputs);
  parser.parse_or_exit(argc, argv);

  if (list) {
    for (const auto& name : driver::matrix_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }
  if (threads < 1) return parser.fail("--threads must be >= 1");
  if (merge_out.empty() && !merge_inputs.empty())
    return parser.fail("unexpected argument '" + merge_inputs.front() +
                       "' (input documents are only valid with --merge)");

  // With the document on stdout, every informational line moves to stderr
  // so the output stream stays byte-clean for the collector.
  std::FILE* log = (json_path == "-" || merge_out == "-") ? stderr : stdout;

  try {
    if (!merge_out.empty()) {
      if (merge_inputs.empty())
        return parser.fail("--merge needs at least one input document");
      std::vector<std::string> documents;
      documents.reserve(merge_inputs.size());
      for (const auto& path : merge_inputs)
        documents.push_back(io::read_file(path));
      io::emit_document(merge_out, driver::merge_json(documents));
      std::fprintf(log, "merged %zu document(s) into %s\n", documents.size(),
                   merge_out.c_str());
      return 0;
    }

    driver::ShardSpec shard;
    if (!shard_text.empty()) shard = driver::ShardSpec::parse(shard_text);

    driver::SweepSpec spec = driver::matrix(matrix_name);
    if (smoke) spec = driver::smoke(std::move(spec));
    spec = driver::with_backend(std::move(spec), backend);
    // choice() only validates when the flag is passed; the empty default
    // means "leave the matrix's per-cell scheme axis alone".
    if (!scheme.empty()) spec = driver::with_scheme(std::move(spec), scheme);
    spec.lint = lint;
    const auto jobs = driver::expand_jobs(spec);
    if (shard.is_whole()) {
      std::fprintf(log, "sweep %-20s %zu jobs on %u thread(s)\n",
                   spec.name.c_str(), jobs.size(), threads);
    } else {
      std::fprintf(log, "sweep %-20s shard %u/%u of %zu jobs on %u thread(s)\n",
                   spec.name.c_str(), shard.index, shard.count, jobs.size(),
                   threads);
    }

    driver::ProgressFn progress;
    if (!quiet) {
      progress = [log](const driver::JobResult& r) {
        if (!r.ok) {
          std::fprintf(log, "  [%3zu] %-14s %-34s FAILED: %s\n", r.job.index,
                       r.job.workload.c_str(), r.job.config.name.c_str(),
                       r.error.c_str());
          return;
        }
        std::fprintf(log,
                     "  [%3zu] %-14s %-34s cycles %10llu -> %10llu (%+6.1f%%)\n",
                     r.job.index, r.job.workload.c_str(),
                     r.job.config.name.c_str(),
                     static_cast<unsigned long long>(r.m.vanilla_cycles),
                     static_cast<unsigned long long>(r.m.sofia_cycles),
                     r.m.cycle_overhead_pct());
      };
    }
    // Cache warnings (loud misses, store failures) always go to stderr so
    // they survive --quiet and never touch a stdout document.
    const auto store = cache::ResultStore::open(cache_dir, [](const std::string& m) {
      std::fprintf(stderr, "sofia_sweep: %s\n", m.c_str());
    });
    if (store)
      std::fprintf(log, "cache: %s\n", store->root().string().c_str());

    const auto result =
        driver::run_sweep(spec, threads, progress, shard, store.get());
    std::fprintf(log, "done in %.2f s (%u thread(s)); %s\n",
                 result.wall_seconds, result.threads_used,
                 result.all_ok() ? "all jobs ok" : "FAILURES");
    if (store) {
      const auto cs = store->stats();
      std::fprintf(stderr,
                   "cache: %llu hit(s), %llu miss(es), %llu stored, "
                   "%llu failure(s)\n",
                   static_cast<unsigned long long>(cs.hits),
                   static_cast<unsigned long long>(cs.misses),
                   static_cast<unsigned long long>(cs.stored),
                   static_cast<unsigned long long>(cs.failures));
      if (!cache_stats_path.empty())
        io::emit_document(cache_stats_path, cache_stats_json(*store));
    } else if (!cache_stats_path.empty()) {
      return parser.fail("--cache-stats needs --cache (or $SOFIA_CACHE)");
    }

    if (!json_path.empty()) {
      io::emit_document(json_path, driver::to_json(result));
      if (json_path != "-")
        std::fprintf(log, "wrote %s\n", json_path.c_str());
    }
    return result.all_ok() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_sweep: %s\n", e.what());
    return 1;
  }
}
