// sofia-sweep: run an experiment matrix (workloads × configurations) on a
// thread pool and emit the results as a machine-readable JSON document.
// The built-in matrices cover the paper's headline tables plus the repo's
// ablations; adding a scenario is one entry in src/driver/sweep.cpp.
//
//   sofia_sweep [--matrix NAME] [--threads N] [--json PATH] [--smoke] [--list]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "driver/sweep.hpp"

namespace {

int usage(std::FILE* to, int exit_code) {
  std::fprintf(to,
               "usage: sofia_sweep [options]\n"
               "  --matrix NAME   matrix to run (default: suite-overhead; see --list)\n"
               "  --threads N     worker threads (default: hardware concurrency)\n"
               "  --json PATH     write the results document to PATH\n"
               "  --smoke         shrink the matrix to a seconds-long smoke run\n"
               "  --list          list the built-in matrices and exit\n"
               "  --quiet         suppress the per-job progress table\n");
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  std::string matrix_name = "suite-overhead";
  std::string json_path;
  unsigned threads = std::max(1u, std::thread::hardware_concurrency());
  bool smoke = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto take_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sofia_sweep: %s needs a value\n", flag);
        std::exit(usage(stderr, 2));
      }
      return argv[++i];
    };
    if (arg == "--matrix") {
      matrix_name = take_value("--matrix");
    } else if (arg == "--threads") {
      const long n = std::strtol(take_value("--threads"), nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "sofia_sweep: --threads must be >= 1\n");
        return usage(stderr, 2);
      }
      threads = static_cast<unsigned>(n);
    } else if (arg == "--json") {
      json_path = take_value("--json");
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list") {
      for (const auto& name : driver::matrix_names())
        std::printf("%s\n", name.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(stdout, 0);
    } else {
      std::fprintf(stderr, "sofia_sweep: unknown option '%s'\n", argv[i]);
      return usage(stderr, 2);
    }
  }

  try {
    driver::SweepSpec spec = driver::matrix(matrix_name);
    if (smoke) spec = driver::smoke(std::move(spec));
    const auto jobs = driver::expand_jobs(spec);
    std::printf("sweep %-20s %zu jobs on %u thread(s)\n", spec.name.c_str(),
                jobs.size(), threads);

    driver::ProgressFn progress;
    if (!quiet) {
      progress = [](const driver::JobResult& r) {
        if (!r.ok) {
          std::printf("  [%3zu] %-14s %-34s FAILED: %s\n", r.job.index,
                      r.job.workload.c_str(), r.job.config.name.c_str(),
                      r.error.c_str());
          return;
        }
        std::printf("  [%3zu] %-14s %-34s cycles %10llu -> %10llu (%+6.1f%%)\n",
                    r.job.index, r.job.workload.c_str(),
                    r.job.config.name.c_str(),
                    static_cast<unsigned long long>(r.m.vanilla_cycles),
                    static_cast<unsigned long long>(r.m.sofia_cycles),
                    r.m.cycle_overhead_pct());
      };
    }
    const auto result = driver::run_sweep(spec, threads, progress);
    std::printf("done in %.2f s (%u thread(s)); %s\n", result.wall_seconds,
                result.threads_used, result.all_ok() ? "all jobs ok" : "FAILURES");

    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "sofia_sweep: cannot write '%s'\n",
                     json_path.c_str());
        return 1;
      }
      out << driver::to_json(result);
      std::printf("wrote %s\n", json_path.c_str());
    }
    return result.all_ok() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "sofia_sweep: %s\n", e.what());
    return 1;
  }
}
