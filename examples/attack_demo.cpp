// Attack demo: what SOFIA detects, narrated.
//
//   * code injection  — flip/patch ciphertext bits;
//   * code relocation — move valid ciphertext to another address;
//   * version replay  — graft a block from a different program version;
//   * code reuse      — smash a return address toward a store gadget
//                       (succeeds on the vanilla core, resets on SOFIA).
//
// Build & run:  ./build/examples/attack_demo
#include <cstdio>

#include "pipeline/device_profile.hpp"
#include "security/attacks.hpp"

namespace {

void narrate(const sofia::security::AttackOutcome& outcome) {
  using sofia::sim::RunResult;
  std::printf("  %-42s -> ", outcome.name.c_str());
  if (outcome.detected) {
    std::printf("RESET at cycle %llu (%s)\n",
                static_cast<unsigned long long>(outcome.run.reset.cycle),
                to_string(outcome.run.reset.cause).data());
  } else if (outcome.output_clean) {
    std::printf("no effect (tampered a block the run never fetches)\n");
  } else {
    std::printf("!!! UNDETECTED CORRUPTION (output '%s')\n",
                outcome.run.output.c_str());
  }
}

}  // namespace

int main() {
  using namespace sofia;
  // The device under attack: paper defaults (RECTANGLE-80, example keys).
  const auto profile = pipeline::DeviceProfile::paper_default();
  const auto keys = profile.keys();

  const char* victim = R"(
main:
  li r1, 0
  li r2, 10
loop:
  call work
  addi r2, r2, -1
  bnez r2, loop
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
work:
  addi r1, r1, 7
  ret
)";

  security::AttackHarness harness(victim, profile);
  std::printf("victim program runs clean: output = %s\n",
              harness.clean_run().output.c_str());

  std::printf("\ncode injection (the device decrypts, then the run-time MAC "
              "fails):\n");
  narrate(harness.flip_bit(2, 0));
  narrate(harness.patch_word(5, 0x0D400007));  // attacker-chosen 'addi'
  std::printf("\ncode relocation (CTR counters bind words to addresses):\n");
  narrate(harness.relocate_word(2, 10));
  narrate(harness.splice_block(0, 1));
  std::printf("\ncross-version replay (the nonce omega separates versions):\n");
  narrate(harness.cross_version_splice(0x0001, 0));

  std::printf("\nreturn-address smash toward a store gadget:\n");
  const auto demo = security::run_rop_demo(keys);
  std::printf("  vanilla core: clean '%s' -> attacked '%s'  (gadget fired!)\n",
              demo.vanilla_clean.output.substr(0, 4).c_str(),
              demo.vanilla_attacked.output.substr(0, 4).c_str());
  std::printf("  SOFIA core:   clean '%s' -> attacked: %s, cause %s — the\n"
              "  gadget block was encrypted for its legitimate predecessor,\n"
              "  not for this return edge, so its MAC check fails before the\n"
              "  store can reach the MA stage.\n",
              demo.sofia_clean.output.substr(0, 4).c_str(),
              to_string(demo.sofia_attacked.status).data(),
              to_string(demo.sofia_attacked.reset.cause).data());
  return 0;
}
