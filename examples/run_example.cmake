# CTest runner for the example smoke tests: asserts exit code 0 AND a
# sanity substring in stdout (PASS_REGULAR_EXPRESSION alone would ignore
# the exit code).
#
#   cmake -DEXE=<binary> -DPATTERN=<substring> [-DARGS=<a;b;c>] -P run_example.cmake
if(NOT DEFINED EXE OR NOT DEFINED PATTERN)
  message(FATAL_ERROR "run_example.cmake needs -DEXE=... and -DPATTERN=...")
endif()
set(_args)
if(DEFINED ARGS)
  separate_arguments(_args UNIX_COMMAND "${ARGS}")
endif()
execute_process(
  COMMAND ${EXE} ${_args}
  OUTPUT_VARIABLE _out
  ERROR_VARIABLE _err
  RESULT_VARIABLE _code)
if(NOT _code EQUAL 0)
  message(FATAL_ERROR "${EXE} exited with ${_code}\nstdout:\n${_out}\nstderr:\n${_err}")
endif()
string(FIND "${_out}" "${PATTERN}" _idx)
if(_idx EQUAL -1)
  message(FATAL_ERROR "${EXE}: expected substring '${PATTERN}' not found in stdout:\n${_out}")
endif()
message(STATUS "${EXE}: ok (exit 0, found '${PATTERN}')")
