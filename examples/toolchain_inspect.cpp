// Toolchain inspector: shows what the transformation actually does to a
// program — the CFG-driven block layout, the multiplexor entries, the
// per-word encryption counters, and the ciphertext vs the plaintext. All
// intermediate products come from one Pipeline session: the assembled
// program, the normalized (devirtualized) program, the block layout and
// the encrypted image are different stages of the same cached session.
//
// Build & run:  ./build/examples/toolchain_inspect
#include <cstdio>

#include "cfg/cfg.hpp"
#include "isa/disasm.hpp"
#include "pipeline/pipeline.hpp"
#include "support/hex.hpp"

int main() {
  using namespace sofia;
  const char* source = R"(
main:
  li r1, 3
  call f         ; caller 1
  call f         ; caller 2 -> f needs a multiplexor entry per caller
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
f:
  addi r1, r1, 5
  ret
)";
  std::printf("source program:\n%s\n", source);

  // Alg. 1's per-word CTR keeps the word-by-word counter view legible.
  pipeline::DeviceProfile profile = pipeline::DeviceProfile::paper_default();
  profile.granularity = crypto::Granularity::kPerWord;
  auto session = pipeline::Pipeline::from_source(source, profile, "inspect");
  const auto& result = session.hardened();
  const auto keys = profile.keys();

  // --- CFG view ------------------------------------------------------------
  const auto cfg = cfg::Cfg::build(result.normalized);
  std::printf("CFG: %zu leaders, %zu edges, %zu functions\n",
              cfg.leaders().size(), cfg.edges().size(), cfg.functions().size());
  for (const auto& fn : cfg.functions()) {
    std::printf("  function '%s' entry @%u, %zu call sites, %zu rets\n",
                fn.name.c_str(), fn.entry, fn.call_sites.size(), fn.rets.size());
  }

  // --- block layout ----------------------------------------------------------
  const auto& layout = result.layout;
  const auto policy = layout.policy();
  std::printf("\nlayout: %zu blocks of %u words (%s)\n", layout.blocks().size(),
              policy.words_per_block, policy.describe().c_str());
  for (const auto& block : layout.blocks()) {
    const bool mux = block.kind == xform::BlockKind::kMux;
    std::printf("\nblock %u @%s  [%s%s]\n", block.id,
                hex32_0x(block.base_word * 4).c_str(), mux ? "mux" : "exec",
                block.synthesized ? ", synthesized" : "");
    std::printf("  entry prevPC: %s", hex32_0x(block.pred1_word * 4).c_str());
    if (mux) std::printf("  /  %s", hex32_0x(block.pred2_word * 4).c_str());
    std::printf("\n");
    const auto plain = xform::block_plaintext(layout, block, keys);
    const std::uint32_t macs =
        policy.words_per_block - static_cast<std::uint32_t>(block.insts.size());
    for (std::uint32_t j = 0; j < policy.words_per_block; ++j) {
      const std::uint32_t addr = (block.base_word + j) * 4;
      const std::uint32_t cipher_word =
          result.image.text[block.base_word * 4 / 4 -
                            result.image.text_base / 4 + j];
      std::printf("  w%u %s  ct=%s  pt=%s  %s\n", j, hex32_0x(addr).c_str(),
                  hex32(cipher_word).c_str(), hex32(plain[j]).c_str(),
                  j < macs ? (j == 0 ? "M1" : (mux && j == 1 ? "M1 (entry 2)" : "M2"))
                           : isa::disassemble_word(plain[j], addr).c_str());
    }
  }

  std::printf("\nimage: entry=%s omega=0x%04x text=%u bytes (%.2fx of %u)\n",
              hex32_0x(result.image.entry).c_str(), result.image.omega,
              result.stats.text_bytes_out, result.stats.expansion(),
              result.stats.text_bytes_in);
  return 0;
}
