// Workload explorer: run any registered workload (the paper's ADPCM pair or
// the extended suite) through both pipelines and print a comparison — one
// Pipeline session per workload, golden-model output checked on both cores.
//
//   ./build/examples/workload_explorer                 # list workloads
//   ./build/examples/workload_explorer adpcm_encode    # default size/seed
//   ./build/examples/workload_explorer crc32 2048 7    # size 2048, seed 7
#include <cstdio>
#include <cstdlib>
#include <string>

#include "pipeline/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  if (argc < 2) {
    std::printf("workloads:\n");
    for (const auto& spec : workloads::all_workloads())
      std::printf("  %-14s (default n=%u)  %s\n", spec.name.c_str(),
                  spec.default_size, spec.description.c_str());
    std::printf("usage: %s <name> [size] [seed]\n", argv[0]);
    return 0;
  }
  const auto& spec = workloads::workload(argv[1]);
  const std::uint32_t size =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 0))
               : spec.default_size;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 1;

  auto session = pipeline::Pipeline::from_workload(spec, seed, size);
  const std::string expected = spec.golden(seed, size);
  const auto& vrun = session.run_vanilla();
  const auto& srun = session.run();

  std::printf("%s  n=%u seed=%llu\n", spec.name.c_str(), size,
              static_cast<unsigned long long>(seed));
  std::printf("golden output:\n%s", expected.c_str());
  std::printf("vanilla: %-8s %10llu cycles  %6u B text   output %s\n",
              to_string(vrun.status).data(),
              static_cast<unsigned long long>(vrun.stats.cycles),
              session.vanilla_image().text_bytes(),
              vrun.output == expected ? "ok" : "MISMATCH");
  std::printf("SOFIA:   %-8s %10llu cycles  %6u B text   output %s\n",
              to_string(srun.status).data(),
              static_cast<unsigned long long>(srun.stats.cycles),
              session.image().text_bytes(),
              srun.output == expected ? "ok" : "MISMATCH");
  std::printf("overhead: cycles %+.1f%%, text %.2fx, padding NOPs %.1f%% of "
              "executed instructions\n",
              (static_cast<double>(srun.stats.cycles) /
                   static_cast<double>(vrun.stats.cycles) -
               1.0) * 100.0,
              session.hardened().stats.expansion(),
              100.0 * static_cast<double>(srun.stats.nops) /
                  static_cast<double>(srun.stats.insts));
  return (vrun.output == expected && srun.output == expected) ? 0 : 1;
}
