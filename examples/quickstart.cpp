// Quickstart: the whole SOFIA flow in one page, through the pipeline API.
//
//   1. Write a bare-metal SR32 program.
//   2. Describe the device once with a DeviceProfile (cipher + keys +
//      block policy + CTR granularity — the single source of truth shared
//      by the installation toolchain and the simulated device).
//   3. Open a Pipeline session. Stages are computed lazily and cached:
//      program() assembles, vanilla_image() links the plain baseline,
//      hardened() runs the §III transform (devirtualize, pack into
//      execution/multiplexor blocks, CBC-MAC, CTR-encrypt), run() executes
//      on the SOFIA core, run_vanilla() on the plain one.
//   4. Compare results and look at the security machinery's statistics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "pipeline/pipeline.hpp"

int main() {
  using namespace sofia;

  // 1. A program: sum the squares 1..10 and print the result.
  const char* source = R"(
main:
  li r1, 10          ; n
  li r2, 0           ; acc
loop:
  mul r3, r1, r1
  add r2, r2, r3
  addi r1, r1, -1
  bnez r1, loop
  li r10, 0xFFFF0008 ; MMIO putint
  sw r2, 0(r10)
  halt
)";

  // 2. The device: paper defaults — RECTANGLE-80, the documented example
  //    keys, 8-word blocks, pair-granular CTR (§III hardware).
  const pipeline::DeviceProfile profile = pipeline::DeviceProfile::paper_default();
  std::printf("device profile: %s\n\n", profile.fingerprint().c_str());

  // 3. One session covers both back ends; the source is assembled once.
  pipeline::Pipeline session =
      pipeline::Pipeline::from_source(source, profile, "quickstart");

  // Vanilla baseline.
  const sim::RunResult& vrun = session.run_vanilla();
  std::printf("vanilla : status=%s output=%s", to_string(vrun.status).data(),
              vrun.output.c_str());
  std::printf("          %llu cycles, %llu instructions\n",
              static_cast<unsigned long long>(vrun.stats.cycles),
              static_cast<unsigned long long>(vrun.stats.insts));

  // SOFIA: the provider transforms with the device's keys...
  const xform::TransformResult& transformed = session.hardened();
  std::printf("\ntransform: %u bytes -> %u bytes (%.2fx), %u exec + %u mux + "
              "%u forwarding blocks, %u padding NOPs\n",
              transformed.stats.text_bytes_in, transformed.stats.text_bytes_out,
              transformed.stats.expansion(), transformed.stats.layout.exec_blocks,
              transformed.stats.layout.mux_blocks,
              transformed.stats.layout.forward_blocks,
              transformed.stats.layout.pad_nops);

  // ...and the simulated SOFIA core decrypts and verifies at fetch time.
  const sim::RunResult& srun = session.run();
  std::printf("SOFIA   : status=%s output=%s", to_string(srun.status).data(),
              srun.output.c_str());
  std::printf("          %llu cycles, %llu blocks fetched, %llu MAC "
              "verifications, %llu CTR + %llu CBC cipher ops\n",
              static_cast<unsigned long long>(srun.stats.cycles),
              static_cast<unsigned long long>(srun.stats.blocks_fetched),
              static_cast<unsigned long long>(srun.stats.mac_verifications),
              static_cast<unsigned long long>(srun.stats.ctr_ops),
              static_cast<unsigned long long>(srun.stats.cbc_ops));

  // 4. Same architectural result, every block authenticated. measure()
  //    packages the same comparison (and validates it) in one call.
  const pipeline::Measurement m = session.measure();
  std::printf("\noutputs match: %s  (text %.2fx, cycles %+.1f%%)\n",
              vrun.output == srun.output ? "yes" : "NO (bug!)",
              m.size_ratio(), m.cycle_overhead_pct());
  return vrun.output == srun.output ? 0 : 1;
}
