// Quickstart: the whole SOFIA flow in one page.
//
//   1. Write a bare-metal SR32 program.
//   2. Assemble it.
//   3. Vanilla path: link sequentially, run on the plain core.
//   4. SOFIA path: transform (devirtualize, pack into execution/multiplexor
//      blocks, CBC-MAC, CTR-encrypt) with a device key set, then run on the
//      simulated SOFIA core, which decrypts and verifies at fetch time.
//   5. Compare results and look at the security machinery's statistics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "assembler/link.hpp"
#include "assembler/program.hpp"
#include "crypto/key_set.hpp"
#include "sim/machine.hpp"
#include "xform/transform.hpp"

int main() {
  using namespace sofia;

  // 1. A program: sum the squares 1..10 and print the result.
  const char* source = R"(
main:
  li r1, 10          ; n
  li r2, 0           ; acc
loop:
  mul r3, r1, r1
  add r2, r2, r3
  addi r1, r1, -1
  bnez r1, loop
  li r10, 0xFFFF0008 ; MMIO putint
  sw r2, 0(r10)
  halt
)";

  // 2. Assemble once; both back ends consume the same symbolic program.
  const assembler::Program program = assembler::assemble(source);

  // 3. Vanilla baseline.
  const assembler::LoadImage vanilla = assembler::link_vanilla(program);
  sim::SimConfig vanilla_config;
  const sim::RunResult vrun = sim::run_image(vanilla, vanilla_config);
  std::printf("vanilla : status=%s output=%s", to_string(vrun.status).data(),
              vrun.output.c_str());
  std::printf("          %llu cycles, %llu instructions\n",
              static_cast<unsigned long long>(vrun.stats.cycles),
              static_cast<unsigned long long>(vrun.stats.insts));

  // 4. SOFIA: the provider transforms with the device's keys.
  const crypto::KeySet keys =
      crypto::KeySet::example(crypto::CipherKind::kRectangle80);
  xform::Options options;  // paper defaults: 8-word blocks, stores >= word 4
  options.granularity = crypto::Granularity::kPerPair;
  const xform::TransformResult transformed =
      xform::transform(program, keys, options);

  std::printf("\ntransform: %u bytes -> %u bytes (%.2fx), %u exec + %u mux + "
              "%u forwarding blocks, %u padding NOPs\n",
              transformed.stats.text_bytes_in, transformed.stats.text_bytes_out,
              transformed.stats.expansion(), transformed.stats.layout.exec_blocks,
              transformed.stats.layout.mux_blocks,
              transformed.stats.layout.forward_blocks,
              transformed.stats.layout.pad_nops);

  sim::SimConfig sofia_config;
  sofia_config.keys = keys;
  sofia_config.policy = options.policy;
  const sim::RunResult srun = sim::run_image(transformed.image, sofia_config);
  std::printf("SOFIA   : status=%s output=%s", to_string(srun.status).data(),
              srun.output.c_str());
  std::printf("          %llu cycles, %llu blocks fetched, %llu MAC "
              "verifications, %llu CTR + %llu CBC cipher ops\n",
              static_cast<unsigned long long>(srun.stats.cycles),
              static_cast<unsigned long long>(srun.stats.blocks_fetched),
              static_cast<unsigned long long>(srun.stats.mac_verifications),
              static_cast<unsigned long long>(srun.stats.ctr_ops),
              static_cast<unsigned long long>(srun.stats.cbc_ops));

  // 5. Same architectural result, every block authenticated.
  std::printf("\noutputs match: %s\n",
              vrun.output == srun.output ? "yes" : "NO (bug!)");
  return vrun.output == srun.output ? 0 : 1;
}
